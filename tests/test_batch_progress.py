"""Tests for the live batch progress event stream.

The supervisor narrates its state machine through an ``on_event`` sink
(``case_start`` / ``case_failed`` / ``case_quarantined`` / ``case_done``
/ heartbeats), and the batch layer brackets the stream with
``batch_start`` / ``batch_done``.  These tests script failures through
:class:`FaultPlan` so the expected sequences are deterministic, and
check the two hard properties: a broken sink never breaks the batch,
and the CLI's ``--progress`` stderr stream is line-oriented JSON.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.core.synthesizer import SynthesisOptions
from repro.parallel import (
    EVENT_CASE_DONE,
    EVENT_CASE_FAILED,
    EVENT_CASE_QUARANTINED,
    EVENT_CASE_START,
    EVENT_HEARTBEAT,
    BatchCase,
    BatchSynthesizer,
    SupervisorConfig,
)
from repro.robustness import FaultPlan


def _cases(network, tour, count: int) -> list[BatchCase]:
    return [
        BatchCase(
            network=network,
            options=SynthesisOptions(
                ring_method="heuristic", wl_budget=4 + i, label=f"c{i}"
            ),
            label=f"c{i}",
            tour=tour,
        )
        for i in range(count)
    ]


def _config(**overrides) -> SupervisorConfig:
    settings = dict(
        max_attempts=2,
        backoff_base_s=0.001,
        backoff_cap_s=0.01,
        seed=0,
    )
    settings.update(overrides)
    return SupervisorConfig(**settings)


def _run(network, tour, count, *, plan=None, config=None, sink=None):
    events: list[dict] = []
    report = BatchSynthesizer(
        workers=1,
        on_error="collect",
        config=config or _config(),
        fault_plan=plan,
        on_event=sink if sink is not None else events.append,
    ).run(_cases(network, tour, count))
    return report, events


class TestEventStream:
    def test_fault_free_sequence(self, network8, tour8):
        report, events = _run(network8, tour8, 2)
        assert report.ok
        names = [e["event"] for e in events]
        assert names == [
            "batch_start",
            EVENT_CASE_START,
            EVENT_CASE_DONE,
            EVENT_CASE_START,
            EVENT_CASE_DONE,
            "batch_done",
        ]
        start = events[0]
        assert start["cases"] == 2 and start["resumed"] == 0
        done = events[-1]
        assert done["failures"] == 0 and done["elapsed_s"] > 0

    def test_retry_narrates_failure_then_success(self, network8, tour8):
        plan = FaultPlan().worker_crash("c0", attempt=1)
        report, events = _run(network8, tour8, 1, plan=plan)
        assert report.ok
        sequence = [
            (e["event"], e.get("attempt")) for e in events if "attempt" in e
        ]
        assert sequence == [
            (EVENT_CASE_START, 1),
            (EVENT_CASE_FAILED, 1),
            (EVENT_CASE_START, 2),
            (EVENT_CASE_DONE, 2),
        ]
        failed = next(e for e in events if e["event"] == EVENT_CASE_FAILED)
        assert failed["kind"] == "crash"
        assert failed["will_retry"] is True

    def test_quarantine_event_after_exhausted_retries(self, network8, tour8):
        plan = (
            FaultPlan()
            .worker_crash("c0", attempt=1)
            .worker_crash("c0", attempt=2)
        )
        report, events = _run(network8, tour8, 2, plan=plan)
        assert not report.ok and len(report.quarantined) == 1
        quarantined = [
            e for e in events if e["event"] == EVENT_CASE_QUARANTINED
        ]
        assert len(quarantined) == 1
        assert quarantined[0]["label"] == "c0"
        assert quarantined[0]["attempts"] == 2
        final_failure = [
            e
            for e in events
            if e["event"] == EVENT_CASE_FAILED and e["attempt"] == 2
        ]
        assert final_failure[0]["will_retry"] is False
        # The healthy case still completes and is narrated normally.
        assert any(
            e["event"] == EVENT_CASE_DONE and e["label"] == "c1"
            for e in events
        )

    def test_timestamps_are_monotone(self, network8, tour8):
        _, events = _run(network8, tour8, 3)
        stamps = [e["t_s"] for e in events if "t_s" in e]
        assert stamps == sorted(stamps)
        assert all(t >= 0 for t in stamps)

    def test_heartbeats_carry_state_counts(self, network8, tour8):
        config = _config(heartbeat_interval_s=1e-6)
        _, events = _run(network8, tour8, 3, config=config)
        beats = [e for e in events if e["event"] == EVENT_HEARTBEAT]
        assert beats, "tiny interval must produce at least one heartbeat"
        for beat in beats:
            assert beat["total"] == 3
            assert sum(beat["states"].values()) == 3
            assert isinstance(beat["active"], list)
            assert "retries" in beat and "circuit_open" in beat

    def test_broken_sink_disables_itself_not_the_batch(self, network8, tour8):
        seen: list[str] = []

        def sink(event: dict) -> None:
            seen.append(event["event"])
            raise RuntimeError("sink exploded")

        report, _ = _run(network8, tour8, 2, sink=sink)
        assert report.ok  # all cases completed despite the hostile sink
        assert seen == ["batch_start"]  # disabled after the first raise

    def test_no_sink_means_no_overhead_paths(self, network8, tour8):
        report = BatchSynthesizer(
            workers=1, on_error="collect", config=_config()
        ).run(_cases(network8, tour8, 2))
        assert report.ok


class TestCliProgress:
    def test_progress_stream_is_line_oriented_json(self, tmp_path, capsys):
        cases_path = tmp_path / "cases.json"
        cases_path.write_text(
            json.dumps(
                [
                    {"nodes": 8, "label": "a", "ring_method": "heuristic"},
                    {"nodes": 8, "label": "b", "ring_method": "heuristic"},
                ]
            ),
            encoding="utf-8",
        )
        code = main(["batch", str(cases_path), "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        events = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.startswith("{")
        ]
        names = [e["event"] for e in events]
        assert names[0] == "batch_start"
        assert names[-1] == "batch_done"
        assert names.count(EVENT_CASE_START) == 2
        assert names.count(EVENT_CASE_DONE) == 2

    def test_without_progress_stderr_has_no_events(self, tmp_path, capsys):
        cases_path = tmp_path / "cases.json"
        cases_path.write_text(
            json.dumps([{"nodes": 8, "label": "a", "ring_method": "heuristic"}]),
            encoding="utf-8",
        )
        code = main(["batch", str(cases_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert not any(
            line.startswith("{") for line in captured.err.splitlines()
        )
