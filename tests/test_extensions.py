"""Tests for the extension features: heuristic ring construction,
higher-order crosstalk, resource/spectrum reports, JSON reports and
the scaling harness."""

import json
import math

import pytest

from repro.analysis import (
    DropFilter,
    Leg,
    PhotonicCircuit,
    SignalSpec,
    compute_noise,
    evaluate_circuit,
    resource_report,
    spectrum_report,
)
from repro.core import synthesize
from repro.core.heuristic_ring import construct_ring_tour_heuristic
from repro.core.ring import construct_ring_tour
from repro.geometry import Point
from repro.io import design_report, save_report
from repro.network import Network
from repro.network.placement import extended_placement, psion_placement
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES
from tests.test_analysis_loss_noise import SIMPLE


class TestHeuristicRing:
    def test_matches_structure(self, network16):
        tour = construct_ring_tour_heuristic(list(network16.positions))
        assert sorted(tour.order) == list(range(16))
        assert tour.crossing_count == 0

    def test_near_optimal_on_paper_sizes(self, network16, tour16):
        heuristic = construct_ring_tour_heuristic(list(network16.positions))
        assert heuristic.length_mm <= 1.15 * tour16.length_mm

    def test_scales_past_milp_sizes(self):
        points, _ = extended_placement(64)
        tour = construct_ring_tour_heuristic(points)
        assert tour.size == 64
        assert tour.crossing_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            construct_ring_tour_heuristic([Point(0, 0), Point(1, 0)])
        with pytest.raises(ValueError):
            construct_ring_tour_heuristic(
                [Point(0, 0), Point(0, 0), Point(1, 1), Point(2, 0)]
            )

    def test_synthesizer_integration(self, network8):
        design = synthesize(network8, wl_budget=8, ring_method="heuristic")
        assert len(design.mapping.assignments) + len(
            design.shortcut_plan.served
        ) == 56

    def test_unknown_method_rejected(self, network8):
        with pytest.raises(ValueError):
            synthesize(network8, ring_method="bogus")


def _chain_circuit():
    """Three guides chained by crossings: A x B at 5, B x C at 7.

    A first-order leak from the signal on A lands on B; a second-order
    leak continues from B onto C, where a same-wavelength filter waits.
    """
    circuit = PhotonicCircuit()
    a = circuit.add_waveguide(10.0)
    b = circuit.add_waveguide(10.0)
    c = circuit.add_waveguide(10.0)
    a.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
    # B carries a different wavelength so the first-order token passes.
    b.add_drop_filter(DropFilter(10.0, 1, signal_id=1, node=2))
    c.add_drop_filter(DropFilter(10.0, 0, signal_id=2, node=3))
    circuit.add_crossing(a.wid, 5.0, b.wid, 5.0)
    circuit.add_crossing(b.wid, 7.0, c.wid, 7.0)
    circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(a.wid, 0.0, 10.0)]))
    circuit.add_signal(SignalSpec(1, 4, 2, 1, [Leg(b.wid, 0.0, 10.0)]))
    circuit.add_signal(SignalSpec(2, 5, 3, 0, [Leg(c.wid, 0.0, 10.0)]))
    circuit.finalize()
    return circuit


class TestHigherOrderNoise:
    def test_first_order_misses_the_chain(self):
        circuit = _chain_circuit()
        noise = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK, max_order=1)
        assert 2 not in noise  # signal on C sees nothing at order 1

    def test_second_order_reaches_through_two_crossings(self):
        circuit = _chain_circuit()
        noise = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK, max_order=2)
        records = noise.get(2, [])
        assert records and records[0].order == 2
        # Two -40 dB couplings: about 80 dB below the aggressor level.
        assert records[0].rel_db == pytest.approx(-0.7 - 80.0 - 0.6, abs=0.1)

    def test_second_order_is_negligible(self):
        # The paper's justification for first-order-only analysis:
        # every additional order costs another crossing coupling
        # (about -40 dB), so second-order noise sits 70+ dB under the
        # signal even in this worst-case chain.
        circuit = _chain_circuit()
        second = compute_noise(circuit, SIMPLE, NIKDAST_CROSSTALK, max_order=2)
        strongest_second = max(
            r.rel_db
            for records in second.values()
            for r in records
            if r.order == 2
        )
        assert strongest_second < -70.0

    def test_evaluation_with_noise_order(self):
        circuit = _chain_circuit()
        ev1 = evaluate_circuit(circuit, SIMPLE, NIKDAST_CROSSTALK, with_power=False)
        ev2 = evaluate_circuit(
            circuit, SIMPLE, NIKDAST_CROSSTALK, with_power=False, noise_order=2
        )
        assert ev2.noisy_signals >= ev1.noisy_signals


@pytest.fixture(scope="module")
def design_and_eval():
    points, die = psion_placement(8)
    network = Network.from_positions(points, die=die)
    design = synthesize(network, wl_budget=8)
    circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
    return design, evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK), circuit


class TestResourceReport:
    def test_counts(self, design_and_eval):
        design, _, _ = design_and_eval
        report = resource_report(design)
        assert report.modulator_count == 56
        assert report.mrr_count >= 56
        assert report.photodetector_count == report.mrr_count
        assert report.ring_count == design.ring_count
        assert report.waveguide_mm > design.tour.length_mm
        assert report.footprint_mm2 > 0

    def test_xring_crossing_free(self, design_and_eval):
        design, _, _ = design_and_eval
        report = resource_report(design)
        # Internal PDN and crossing-budgeted shortcuts: the only data
        # crossings come from merged shortcut pairs.
        assert report.crossing_count == 4 * len(
            design.shortcut_plan.crossing_pairs
        )


class TestSpectrumReport:
    def test_channels_cover_signals(self, design_and_eval):
        design, evaluation, circuit = design_and_eval
        report = spectrum_report(circuit, ORING_LOSSES, evaluation)
        assert sum(c.signal_count for c in report.channels) == 56
        assert len(report.channels) == evaluation.wl_count

    def test_power_matches_evaluation(self, design_and_eval):
        _, evaluation, circuit = design_and_eval
        report = spectrum_report(circuit, ORING_LOSSES, evaluation)
        assert report.total_power_mw / 1000 == pytest.approx(
            evaluation.power_w, rel=1e-9
        )

    def test_channel_stats_consistent(self, design_and_eval):
        _, evaluation, circuit = design_and_eval
        report = spectrum_report(circuit, ORING_LOSSES, evaluation)
        for channel in report.channels:
            assert channel.worst_il_db >= channel.mean_il_db - 1e-9
            assert channel.headroom_db >= -1e-9

    def test_snr_percentile(self, design_and_eval):
        _, evaluation, circuit = design_and_eval
        report = spectrum_report(circuit, ORING_LOSSES, evaluation)
        # XRing is noise-free: percentile degenerates to +inf.
        assert report.snr_percentile_db(0.5) == math.inf
        with pytest.raises(ValueError):
            report.snr_percentile_db(2.0)

    def test_without_evaluation(self, design_and_eval):
        _, _, circuit = design_and_eval
        report = spectrum_report(circuit, ORING_LOSSES)
        assert report.snr_values_db == []
        assert report.power_imbalance >= 1.0


class TestJsonReport:
    def test_roundtrip(self, design_and_eval, tmp_path):
        design, evaluation, _ = design_and_eval
        path = save_report(tmp_path / "design.json", design, evaluation)
        loaded = json.loads(path.read_text())
        assert loaded["network"]["size"] == 8
        assert loaded["evaluation"]["signal_count"] == 56
        assert loaded["evaluation"]["snr_worst_db"] is None
        assert loaded["tour"]["crossings"] == 0
        assert loaded["resources"]["modulator_count"] == 56

    def test_report_without_evaluation(self, design_and_eval):
        design, _, _ = design_and_eval
        report = design_report(design)
        assert "evaluation" not in report
        assert report["pdn"]["mode"] == "internal"


class TestScalingHarness:
    def test_small_run(self):
        from repro.experiments import format_scaling, run_scaling

        rows = run_scaling(sizes=(8,), methods=("milp", "heuristic"))
        assert {r.method for r in rows} == {"milp", "heuristic"}
        for row in rows:
            assert row.total_time_s > 0
            assert row.row.noisy == 0
        text = format_scaling(rows)
        assert "heuristic" in text

    def test_milp_skipped_above_limit(self):
        from repro.experiments import run_scaling

        rows = run_scaling(sizes=(16,), methods=("milp",), milp_limit=8)
        assert rows == []
