"""Equivalence battery: lazy conflict cuts versus the eager ring MILP.

The cutting-plane loop (:func:`repro.core.ring._solve_ring_lazy`)
builds constraint-(3) rows on demand instead of up front.  Because a
conflict-free incumbent of the relaxed model is feasible for the full
model, both modes must reach the *same optimal objective* — that, plus
"every added cut is a row the eager model would have", is what this
module pins:

- lazy and eager tours have equal length on every seeded floorplan and
  the lazy tour selects no conflicting edge pair;
- the cut rows added by the loop are a subset (by name) of the eager
  model's conflict rows, and their count matches the reported metric;
- round counts stay within :data:`repro.core.ring.LAZY_MAX_ROUNDS`;
- an exhausted :class:`~repro.robustness.deadline.Deadline` degrades
  (raises ``StageTimeout``/returns an incumbent) instead of hanging,
  and the synthesizer's fallback chain still produces a design.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.ring import (
    LAZY_MAX_ROUNDS,
    _build_ring_model,
    _solve_ring_lazy,
    construct_ring_tour,
)
from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.geometry import Point, build_edge_conflicts, conflicting_edge_pairs
from repro.network import Network
from repro.robustness.deadline import Deadline
from repro.robustness.errors import StageTimeout

SEED = 24_601


def _random_floorplan(rng: random.Random, n: int) -> list[Point]:
    side = max(4, int(n**0.5) + 2)
    cells = rng.sample([(c, r) for c in range(side) for r in range(side)], n)
    return [Point(c * 0.35, r * 0.35) for c, r in cells]


def _cases() -> list[list[Point]]:
    rng = random.Random(SEED)
    return [_random_floorplan(rng, 5 + (k % 8)) for k in range(12)]


CASES = _cases()


def _tour_edges(tour) -> list[tuple[int, int]]:
    n = tour.size
    return sorted(
        tuple(sorted((tour.order[k], tour.order[(k + 1) % n])))
        for k in range(n)
    )


class TestLazyEagerEquivalence:
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_same_objective_and_conflict_free(self, case):
        points = CASES[case]
        eager = construct_ring_tour(points, lazy=False)
        lazy = construct_ring_tour(points, lazy=True)
        assert lazy.length_mm == pytest.approx(eager.length_mm, abs=1e-6)
        assert sorted(lazy.order) == list(range(len(points)))
        # The guarantee that matters: the lazy tour's selected edges
        # contain no geometrically conflicting pair.
        assert conflicting_edge_pairs(points, _tour_edges(lazy)) == []

    @pytest.mark.parametrize("case", [0, 3, 7, 11])
    def test_cuts_are_subset_of_eager_rows(self, case):
        points = CASES[case]
        model = _build_ring_model(points, {})
        _sol, _sel, timed_out, rounds, cuts_added = _solve_ring_lazy(
            model, points, None, "auto", None, None
        )
        assert not timed_out
        assert 1 <= rounds <= LAZY_MAX_ROUNDS
        lazy_rows = {
            c.name for c in model.constraints if c.name.startswith("conflict_")
        }
        assert len(lazy_rows) == cuts_added
        eager_model = _build_ring_model(points, build_edge_conflicts(points))
        eager_rows = {
            c.name
            for c in eager_model.constraints
            if c.name.startswith("conflict_")
        }
        assert lazy_rows <= eager_rows
        # Lazy generation exists to add *fewer* rows than the eager
        # model carries (the relaxation binds on only a few).
        assert len(lazy_rows) <= len(eager_rows)

    def test_precomputed_conflicts_reused_for_violation_checks(self):
        # When the conflict dict is already known, the loop must use it
        # (no geometry recompute) and still converge to the optimum.
        points = CASES[2]
        conflicts = build_edge_conflicts(points)
        model = _build_ring_model(points, {})
        sol, selected, timed_out, _rounds, _cuts = _solve_ring_lazy(
            model, points, conflicts, "auto", None, None
        )
        assert not timed_out
        eager = construct_ring_tour(points, lazy=False)
        assert sol.objective == pytest.approx(eager.length_mm, abs=1e-6)


class TestBudgets:
    def test_exhausted_deadline_degrades_not_hangs(self):
        points = CASES[1]
        deadline = Deadline(1e-6)
        while not deadline.expired():
            time.sleep(1e-4)
        start = time.perf_counter()
        try:
            tour = construct_ring_tour(points, lazy=True, deadline=deadline)
        except StageTimeout:
            pass
        else:
            assert tour.timed_out
        assert time.perf_counter() - start < 30.0

    def test_tiny_time_limit_bounded(self):
        points = CASES[4]
        start = time.perf_counter()
        try:
            tour = construct_ring_tour(points, lazy=True, time_limit=1e-3)
        except StageTimeout:
            pass
        else:
            # An incumbent found inside the budget is returned as-is.
            assert sorted(tour.order) == list(range(len(points)))
        assert time.perf_counter() - start < 30.0

    def test_synthesizer_fallback_chain_survives_lazy_timeout(self):
        points = CASES[5]
        network = Network.from_positions(points)
        options = SynthesisOptions(
            lazy_conflicts=True, deadline_s=1e-3, on_error="degrade"
        )
        design = XRingSynthesizer(network, options).run()
        assert design.tour is not None
        assert sorted(design.tour.order) == list(range(len(points)))


class TestOptionsPlumbing:
    def test_lazy_option_validated(self):
        from repro.robustness.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SynthesisOptions(lazy_conflicts="yes")

    @pytest.mark.parametrize("lazy", [True, False, None])
    def test_synthesizer_accepts_all_modes(self, lazy):
        points = CASES[6]
        network = Network.from_positions(points)
        options = SynthesisOptions(lazy_conflicts=lazy, on_error="raise")
        design = XRingSynthesizer(network, options).run()
        assert conflicting_edge_pairs(points, _tour_edges(design.tour)) == []
