"""The zero-dep sampling profiler: capture, exports, overhead gate.

The overhead test is the contract the ISSUE pins: profiling at the
default rate must cost **under 5%** wall clock on a CPU-bound
workload.  Timing tests are noisy on shared CI, so the gate takes the
best of three runs — real systematic overhead survives a min, noise
does not.
"""

from __future__ import annotations

import json
import time

from repro.obs import STAGE_FUNCTIONS, SamplingProfiler


def _spin(seconds: float) -> int:
    """A CPU-bound leaf the sampler should catch red-handed."""
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def _stage_ring(seconds: float) -> int:
    """Named like the synthesis ring stage so attribution maps it."""
    return _spin(seconds)


class TestCapture:
    def test_sampler_sees_the_busy_function(self):
        with SamplingProfiler(hz=200.0) as profiler:
            _spin(0.25)
        assert profiler.sample_count >= 10
        assert profiler.elapsed_s >= 0.2
        top = dict(profiler.top_functions(10))
        assert any(name.endswith(":_spin") for name in top)

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=100.0).start()
        _spin(0.05)
        profiler.stop()
        samples = profiler.sample_count
        profiler.stop()
        assert profiler.sample_count == samples

    def test_stage_attribution_maps_known_functions(self):
        assert "_stage_ring" in STAGE_FUNCTIONS  # the mapping contract
        with SamplingProfiler(hz=200.0) as profiler:
            _stage_ring(0.25)
        attribution = profiler.stage_attribution()
        assert attribution["samples"] == profiler.sample_count
        ring = attribution["stages"].get("ring")
        assert ring is not None and ring["fraction"] > 0.5

    def test_collapsed_export_shape(self):
        with SamplingProfiler(hz=200.0) as profiler:
            _spin(0.15)
        collapsed = profiler.to_collapsed()
        lines = [line for line in collapsed.splitlines() if line]
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and float(weight) > 0
        assert any(":_spin" in line for line in lines)

    def test_speedscope_export_shape(self):
        with SamplingProfiler(hz=200.0) as profiler:
            _spin(0.15)
        doc = profiler.to_speedscope(name="unit")
        assert doc["$schema"].endswith("file-format-schema.json")
        assert doc["profiles"][0]["type"] == "sampled"
        profile = doc["profiles"][0]
        assert len(profile["samples"]) == len(profile["weights"])
        frame_count = len(doc["shared"]["frames"])
        for stack in profile["samples"]:
            assert all(0 <= idx < frame_count for idx in stack)
        json.dumps(doc)  # must be serializable as-is

    def test_write_emits_all_three_artifacts(self, tmp_path):
        with SamplingProfiler(hz=200.0) as profiler:
            _spin(0.1)
        paths = profiler.write(tmp_path, name="p")
        names = sorted(p.name for p in paths)
        assert names == ["p.collapsed", "p.json", "p.speedscope.json"]
        summary = json.loads((tmp_path / "p.json").read_text())
        assert summary["samples"] == profiler.sample_count
        assert "stages" in summary


def _fixed_work(rounds: int) -> int:
    """A fixed amount of CPU work (not deadline-based, so wall time
    actually reflects any sampling overhead)."""
    total = 0
    for i in range(rounds):
        total += sum(range(300)) + i
    return total


class TestOverheadGate:
    def test_default_rate_overhead_under_5_percent(self):
        """Best interleaved bare/profiled pair stays under the bound.

        A shared-CI box (and the rest of this suite) injects scheduler
        noise an order of magnitude larger than the sampler's real tax,
        so a single back-to-back comparison is flaky.  Interleaving the
        arms and gating on the *best* pair is robust: one clean pair is
        enough to demonstrate the <5% bound holds, while a genuinely
        expensive sampler loop fails every pair.
        """
        # Size the workload to ~0.3-0.5s so dozens of samples land.
        rounds = 120_000

        def run(profiled: bool) -> float:
            start = time.perf_counter()
            if profiled:
                with SamplingProfiler():
                    _fixed_work(rounds)
            else:
                _fixed_work(rounds)
            return time.perf_counter() - start

        run(False)  # warm the timers before measuring
        overheads = []
        for _ in range(4):
            bare = run(False)
            profiled = run(True)
            overheads.append(profiled / bare - 1.0)
            if min(overheads) < 0.05:
                break  # a clean pair proves the bound; stop burning time
        overhead = min(overheads)
        assert overhead < 0.05, (
            f"profiler overhead {overhead:.1%} >= 5% on every "
            f"interleaved pair: {[f'{o:.1%}' for o in overheads]}"
        )
