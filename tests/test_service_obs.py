"""Service-layer observability: request ids, stitched traces,
dashboard, and the on-demand profiler endpoint.

One live server (``isolate_jobs`` + ``solver_workers=2``) solves one
real job; everything else — header plumbing, error envelopes, the
dashboard pair, ``/debug/profile`` validation — asserts against that
same process to keep the suite at a single full solve.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from tests.test_service import LiveServer, slow_spec

TRACEPARENT = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    server = LiveServer(
        tmp_path_factory.mktemp("obs_store"),
        isolate_jobs=True,
        solver_workers=2,
    )
    yield server
    server.stop()


@pytest.fixture(scope="module")
def solved(live):
    """One job submitted with a caller request id + traceparent and
    polled to ``done``."""
    request = urllib.request.Request(
        live.base + "/jobs",
        data=json.dumps(slow_spec(0)).encode(),
        method="POST",
        headers={
            "Content-Type": "application/json",
            "X-Request-Id": "req-obstest00001",
            "traceparent": TRACEPARENT,
        },
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        submit = json.loads(resp.read())
        headers = dict(resp.headers)
    deadline = time.time() + 120
    while time.time() < deadline:
        _, status, _ = live.get_json(f"/jobs/{submit['job_id']}")
        if status["state"] in ("done", "failed"):
            break
        time.sleep(0.25)
    assert status["state"] == "done", status
    return submit, headers, status


class TestRequestIds:
    def test_caller_request_id_is_echoed(self, solved):
        submit, headers, status = solved
        assert headers["X-Request-Id"] == "req-obstest00001"
        assert submit["request_id"] == "req-obstest00001"
        # the id is durable: the job record still carries it
        assert status["request_id"] == "req-obstest00001"

    def test_minted_id_on_plain_requests(self, live):
        _, _, headers = live.get("/healthz")
        assert headers["X-Request-Id"].startswith("req-")

    def test_error_envelope_carries_request_id(self, live):
        status, body, headers = live.get_json("/jobs/doesnotexist")
        assert status == 404
        assert body["request_id"] == headers["X-Request-Id"]

    def test_bad_submit_envelope_carries_request_id(self, live):
        request = urllib.request.Request(
            live.base + "/jobs",
            data=b'{"nodez": 8}',
            method="POST",
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": "req-badspec00001",
            },
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert excinfo.value.headers["X-Request-Id"] == "req-badspec00001"
        assert json.loads(excinfo.value.read())["request_id"] == (
            "req-badspec00001"
        )


class TestStitchedTrace:
    def test_trace_endpoint_returns_connected_tree(self, live, solved):
        submit, _, _ = solved
        status, trace, _ = live.get_json(f"/jobs/{submit['job_id']}/trace")
        assert status == 200
        assert trace["trace_id"] == "ab" * 16  # joined the caller's trace
        assert trace["orphans"] == []
        assert trace["span_count"] >= 3
        # the synthetic job root hangs off the caller's w3c span
        root = next(
            s
            for s in trace["spans"]
            if s["span_uid"] == f"job:{submit['job_id']}"
        )
        assert root["parent_uid"] == "w3c:" + "cd" * 8
        # solve crossed a process boundary: >= 2 pids in one tree
        assert len({s["pid"] for s in trace["spans"]}) >= 2

    def test_trace_of_unknown_job_is_404(self, live):
        status, _, _ = live.get_json("/jobs/nope/trace")
        assert status == 404


class TestDashboard:
    def test_dashboard_page_is_self_contained_html(self, live):
        status, body, headers = live.get("/dashboard")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        page = body.decode()
        assert "xring service dashboard" in page
        assert "/dashboard/data" in page  # the polling loop
        assert "src=" not in page  # no external assets

    def test_dashboard_data_snapshot(self, live, solved):
        submit, _, _ = solved
        status, data, _ = live.get_json("/dashboard/data")
        assert status == 200
        assert data["stats"]["done"] >= 1
        jobs = {j["job_id"]: j for j in data["jobs"]}
        assert jobs[submit["job_id"]]["state"] == "done"
        assert jobs[submit["job_id"]]["request_id"] == "req-obstest00001"
        hist = data["histograms"]["service.job_latency_s"]
        assert hist["total"] >= 1 and hist["p50"] > 0


class TestProfileEndpoint:
    def _post(self, live, query: str):
        request = urllib.request.Request(
            live.base + f"/debug/profile{query}", data=b"", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_profile_returns_speedscope_doc(self, live):
        status, doc = self._post(live, "?seconds=0.5&hz=50")
        assert status == 200
        assert doc["profiles"][0]["type"] == "sampled"

    @pytest.mark.parametrize(
        "query", ["?seconds=0", "?seconds=99", "?hz=9999", "?seconds=abc"]
    )
    def test_bad_parameters_are_400(self, live, query):
        status, body = self._post(live, query)
        assert status == 400
        assert body["request_id"]
