"""Unit tests for Step 4: PDN construction (internal and external)."""

import math

import pytest

from repro.core.mapping import map_signals
from repro.core.pdn import build_pdn
from repro.core.shortcuts import ShortcutPlan, select_shortcuts
from repro.network.traffic import all_to_all
from repro.photonics.parameters import ORING_LOSSES


@pytest.fixture()
def mapping16(tour16):
    return map_signals(tour16, all_to_all(16), ShortcutPlan(), 16)


@pytest.fixture()
def die16(network16):
    return network16.bounding_box()


class TestInternalPdn:
    def test_no_crossings(self, tour16, mapping16, die16):
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="internal"
        )
        assert pdn.crossing_count == 0
        assert pdn.ring_crossings == []

    def test_every_sender_has_feed(self, tour16, mapping16, die16):
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="internal"
        )
        for ring in mapping16.rings:
            for a in mapping16.ring_signals(ring.rid):
                assert ("ring", ring.rid, a.src) in pdn.feeds

    def test_feed_losses_include_splits(self, tour16, mapping16, die16):
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="internal"
        )
        # A binary tree over >= 8 senders has at least 3 levels plus the
        # cross-ring combiner; every feed must cost at least one split.
        assert all(v >= ORING_LOSSES.splitter_db for v in pdn.feeds.values())

    def test_deeper_trees_cost_more(self, tour8, tour16, network8, network16):
        mapping8 = map_signals(tour8, all_to_all(8), ShortcutPlan(), 8)
        mapping16 = map_signals(tour16, all_to_all(16), ShortcutPlan(), 16)
        pdn8 = build_pdn(
            tour8, mapping8, ShortcutPlan(), ORING_LOSSES,
            network8.bounding_box(), mode="internal",
        )
        pdn16 = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES,
            network16.bounding_box(), mode="internal",
        )
        worst8 = max(pdn8.feeds.values())
        worst16 = max(pdn16.feeds.values())
        assert worst16 > worst8

    def test_shortcut_senders_get_feeds(self, tour16, die16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        mapping = map_signals(tour16, all_to_all(16), plan, 16)
        pdn = build_pdn(tour16, mapping, plan, ORING_LOSSES, die16, mode="internal")
        for idx, s in enumerate(plan.shortcuts):
            assert ("shortcut", idx, s.node_a) in pdn.feeds
            assert ("shortcut", idx, s.node_b) in pdn.feeds

    def test_splitter_count_consistent(self, tour16, mapping16, die16):
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="internal"
        )
        # A forest of binary trees over L leaves has exactly L-1 splitters.
        leaves = len(pdn.feeds)
        assert pdn.splitter_count == leaves - 1


class TestExternalPdn:
    def test_crossings_recorded(self, tour16, mapping16, die16):
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="external"
        )
        assert pdn.crossing_count > 0
        assert len(pdn.ring_crossings) == pdn.crossing_count

    def test_crossings_name_valid_rings(self, tour16, mapping16, die16):
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="external"
        )
        rids = {r.rid for r in mapping16.rings}
        assert all(event.rid in rids for event in pdn.ring_crossings)

    def test_inner_rings_attract_more_crossings(self, tour16, mapping16, die16):
        # rid 0 is the outermost instance: a branch descending to ring
        # r crosses rids 0..r-1, so outer rings accumulate more events.
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="external"
        )
        per_rid = {r.rid: 0 for r in mapping16.rings}
        for event in pdn.ring_crossings:
            per_rid[event.rid] += 1
        outermost = per_rid[0]
        innermost = per_rid[max(per_rid)]
        assert outermost >= innermost

    def test_crossing_positions_on_ring(self, tour16, mapping16, die16):
        pdn = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="external"
        )
        for event in pdn.ring_crossings:
            assert 0.0 <= event.ring_position_mm <= tour16.length_mm
            assert event.loss_to_point_db >= 0.0

    def test_external_feeds_cost_more(self, tour16, mapping16, die16):
        internal = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="internal"
        )
        external = build_pdn(
            tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="external"
        )
        assert max(external.feeds.values()) >= max(internal.feeds.values())

    def test_mode_validation(self, tour16, mapping16, die16):
        with pytest.raises(ValueError):
            build_pdn(
                tour16, mapping16, ShortcutPlan(), ORING_LOSSES, die16, mode="bogus"
            )
