"""Differential battery: bulk conflict kernel versus the scalar oracle.

The vectorized kernel in :mod:`repro.geometry.conflicts_bulk` must be
*byte-identical* to the scalar predicate it replaces — the MILP rows
it produces decide which ring edges may coexist, so a single flipped
pair silently changes synthesis results.  This module pins:

- ``build_edge_conflicts_bulk`` == ``build_edge_conflicts_scalar`` as
  whole dicts, over 200+ seeded random floorplans (n = 3..32) plus
  adversarial collinear / shared-row / shared-column layouts;
- ``conflicting_edge_pairs`` (the lazy loop's incumbent check) agrees
  with ``edges_conflict`` on explicit edge subsets;
- ``SegmentSet.any_illegal`` / ``SegmentSet.proper_crossings`` agree
  with ``paths_cross`` / ``crossing_points``;
- the dispatcher (``build_edge_conflicts``) honors ``method=`` and its
  size threshold;
- both implementations reject duplicate coordinates the same way.

Seeds are fixed so failures reproduce; REPRO_BULK_CASES scales the
random sweep (default 200).
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

from repro.geometry import (
    BULK_THRESHOLD,
    Point,
    RectilinearPath,
    SegmentSet,
    build_edge_conflicts,
    build_edge_conflicts_bulk,
    build_edge_conflicts_scalar,
    conflicting_edge_pairs,
    crossing_points,
    edges_conflict,
    l_routes,
    paths_cross,
)

SEED = 987_654_321
N_CASES = int(os.environ.get("REPRO_BULK_CASES", "200"))

#: Node count for each random case.  Small sizes dominate (the scalar
#: oracle is O(n^4) and must run too); the explicit tail reaches the
#: full n=32 of the paper's largest network so the bulk batching code
#: sees multi-batch regimes.
_SIZES = [3 + (k % 12) for k in range(N_CASES)] + [16, 20, 24, 28, 32]


def _random_floorplan(rng: random.Random, n: int) -> list[Point]:
    """Distinct lattice positions: collinear runs stay plentiful."""
    side = max(4, int(n**0.5) + 2)
    cells = rng.sample(
        [(c, r) for c in range(side) for r in range(side)], n
    )
    return [Point(c * 0.35, r * 0.35) for c, r in cells]


def _cases() -> list[list[Point]]:
    rng = random.Random(SEED)
    return [_random_floorplan(rng, n) for n in _SIZES]


CASES = _cases()


class TestBulkMatchesScalarOracle:
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_random_floorplan(self, case):
        points = CASES[case]
        assert build_edge_conflicts_bulk(points) == build_edge_conflicts_scalar(
            points
        )

    @pytest.mark.parametrize(
        "points",
        [
            # One shared row: every edge collinear with every other.
            [Point(float(i), 0.0) for i in range(6)],
            # One shared column.
            [Point(0.0, float(i)) for i in range(6)],
            # Collinear run plus one off-line node (shared terminals
            # meet at the hub in many pairings).
            [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0), Point(1, 2)],
            # Dense 3x3 grid: maximal shared rows/columns.
            [Point(float(c), float(r)) for c in range(3) for r in range(3)],
            # Two clusters joined by long edges.
            [Point(0, 0), Point(0.35, 0), Point(0, 0.35),
             Point(7, 7), Point(7.35, 7), Point(7, 7.35)],
            # EPS-jittered near-collinear coordinates.
            [Point(0, 0), Point(1, 1e-12), Point(2, -1e-12), Point(1, 1)],
        ],
        ids=["row", "column", "hub", "grid3x3", "clusters", "eps-jitter"],
    )
    def test_adversarial_layouts(self, points):
        assert build_edge_conflicts_bulk(points) == build_edge_conflicts_scalar(
            points
        )

    def test_duplicate_coordinates_rejected_like_scalar(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 0), Point(1, 1)]
        with pytest.raises(ValueError):
            build_edge_conflicts_scalar(points)
        with pytest.raises(ValueError):
            build_edge_conflicts_bulk(points)

    def test_symmetry_and_no_self_conflicts(self):
        points = CASES[0]
        conflicts = build_edge_conflicts_bulk(points)
        for pair, others in conflicts.items():
            assert pair not in others
            for other in others:
                assert pair in conflicts[other]


class TestConflictingEdgePairs:
    """The lazy loop's incumbent check against the pairwise oracle."""

    @pytest.mark.parametrize("case", [0, 5, 17, 42, 99])
    def test_subset_agrees_with_edges_conflict(self, case):
        rng = random.Random(SEED + case)
        points = CASES[case]
        n = len(points)
        all_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = sorted(rng.sample(all_edges, min(len(all_edges), n + 2)))
        got = set(
            frozenset(pair) for pair in conflicting_edge_pairs(points, edges)
        )
        want = set()
        for e1, e2 in itertools.combinations(edges, 2):
            if edges_conflict(
                (points[e1[0]], points[e1[1]]),
                (points[e2[0]], points[e2[1]]),
            ):
                want.add(frozenset((e1, e2)))
        assert got == want

    def test_each_pair_reported_once(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        edges = [(0, 2), (1, 3)]
        pairs = conflicting_edge_pairs(points, edges)
        assert len(pairs) == len(set(map(frozenset, pairs)))

    def test_under_two_edges(self):
        points = [Point(0, 0), Point(1, 0), Point(1, 1)]
        assert conflicting_edge_pairs(points, []) == []
        assert conflicting_edge_pairs(points, [(0, 1)]) == []


def _random_paths(rng: random.Random, count: int) -> list[RectilinearPath]:
    paths = []
    while len(paths) < count:
        a = Point(float(rng.randint(0, 6)), float(rng.randint(0, 6)))
        b = Point(float(rng.randint(0, 6)), float(rng.randint(0, 6)))
        if a.almost_equals(b):
            continue
        paths.append(rng.choice(l_routes(a, b)))
    return paths


class TestSegmentSet:
    """Path-versus-set queries against the scalar path predicates."""

    @pytest.mark.parametrize("seed", range(30))
    def test_any_illegal_matches_paths_cross(self, seed):
        rng = random.Random(SEED + seed)
        stored = _random_paths(rng, 6)
        query = _random_paths(rng, 1)[0]
        ignore = (query.start, query.end)
        sset = SegmentSet.from_paths(stored)
        want = any(paths_cross(query, p, ignore=ignore) for p in stored)
        assert sset.any_illegal(query, ignore=ignore) == want
        want_no_ignore = any(paths_cross(query, p) for p in stored)
        assert sset.any_illegal(query) == want_no_ignore

    @pytest.mark.parametrize("seed", range(30))
    def test_proper_crossings_match_crossing_points(self, seed):
        rng = random.Random(SEED * 2 + seed)
        stored = _random_paths(rng, 6)
        query = _random_paths(rng, 1)[0]
        ignore = (query.start, query.end)
        sset = SegmentSet.from_paths(stored)
        got = {(round(p.x, 9), round(p.y, 9))
               for p in sset.proper_crossings(query, ignore=ignore)}
        want = {
            (round(p.x, 9), round(p.y, 9))
            for other in stored
            for p in crossing_points(query, other, ignore=ignore)
        }
        assert got == want

    def test_empty_set(self):
        sset = SegmentSet.from_paths([])
        query = RectilinearPath([Point(0, 0), Point(1, 0)])
        assert not sset.any_illegal(query)
        assert sset.proper_crossings(query) == []


class TestDispatcher:
    def test_method_validation(self):
        with pytest.raises(ValueError):
            build_edge_conflicts([Point(0, 0), Point(1, 0)], method="nope")

    def test_explicit_methods_agree(self):
        points = CASES[1]
        assert build_edge_conflicts(points, method="bulk") == \
            build_edge_conflicts(points, method="scalar")

    def test_auto_uses_bulk_above_threshold(self):
        # Above the threshold "auto" and "bulk" must be the same path;
        # equality with the scalar oracle is what makes that safe.
        rng = random.Random(SEED)
        points = _random_floorplan(rng, BULK_THRESHOLD + 2)
        assert build_edge_conflicts(points) == build_edge_conflicts(
            points, method="scalar"
        )
