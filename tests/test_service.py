"""Acceptance and chaos suite for the synthesis job service.

Three layers:

- unit tests against :class:`JobManager` / :class:`JobStore` /the spec
  parser (deterministic, no sockets);
- live-server tests over real HTTP against a server hosted on a
  background thread (happy path, SSE, idempotent submission,
  backpressure, deadline degradation, breaker-driven readiness);
- process-level chaos: ``python -m repro serve`` as a subprocess,
  SIGKILLed mid-run and restarted on the same store (no duplicate
  solves, byte-identical designs) and SIGTERM-drained to a clean
  exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.robustness import ConfigurationError, InputError
from repro.service import (
    JobManager,
    JobRecord,
    JobStore,
    QueueFull,
    ServiceConfig,
    ServiceDraining,
    ServiceNotReady,
    case_from_spec,
    job_key,
    serve,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: An 8-node ring floorplan that costs a real MILP solve (~40-50ms
#: warm) every time — slow enough that a burst of them gives the chaos
#: tests a window to interrupt, fast enough for CI.
SLOW_RING = [
    [0.0, 0.0],
    [210.0, 0.0],
    [420.0, 0.0],
    [420.0, 210.0],
    [420.0, 420.0],
    [210.0, 420.0],
    [0.0, 420.0],
    [0.0, 210.0],
]


def slow_spec(index: int, **extra) -> dict:
    """A unique full-solve job: the same ring jittered per index, so
    every job has a distinct content key and its own MILP solve."""
    jitter = 0.25 * (index + 1)
    spec = {
        "positions": [[x + jitter, y + jitter] for x, y in SLOW_RING],
        "label": f"slow{index}",
    }
    spec.update(extra)
    return spec


# ---------------------------------------------------------------------------
# unit layer: spec parsing, config, store
# ---------------------------------------------------------------------------
class TestSpecParsing:
    def test_unknown_field_rejected(self):
        with pytest.raises(InputError, match="unknown spec field"):
            case_from_spec({"nodez": 8})

    def test_non_object_rejected(self):
        with pytest.raises(InputError, match="JSON object"):
            case_from_spec([1, 2, 3])

    def test_bad_nodes_rejected(self):
        with pytest.raises(InputError, match="'nodes'"):
            case_from_spec({"nodes": 1})
        with pytest.raises(InputError, match="'nodes'"):
            case_from_spec({"nodes": "eight"})

    def test_bad_positions_rejected(self):
        with pytest.raises(InputError, match="positions"):
            case_from_spec({"positions": []})
        with pytest.raises(InputError, match="positions"):
            case_from_spec({"positions": [["x", "y"]]})

    def test_identical_specs_share_a_key(self):
        a = job_key(case_from_spec({"nodes": 8, "wl": 8}))
        b = job_key(case_from_spec({"nodes": 8, "wl": 8}))
        c = job_key(case_from_spec({"nodes": 8, "wl": 9}))
        assert a == b != c

    def test_options_mapping(self):
        case = case_from_spec(
            {
                "nodes": 8,
                "wl": 10,
                "ring_method": "heuristic",
                "shortcuts": False,
                "pdn": False,
                "deadline": 2.5,
                "on_error": "raise",
                "label": "mapped",
            }
        )
        options = case.options
        assert options.wl_budget == 10
        assert options.ring_method == "heuristic"
        assert not options.enable_shortcuts
        assert options.pdn_mode is None
        assert options.deadline_s == 2.5
        assert options.on_error == "raise"
        assert case.named() == "mapped"


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_concurrency=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(drain_timeout_s=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(retries=-1)

    def test_watchdog_forces_process_isolation(self):
        assert not ServiceConfig().supervisor_config().force_pool
        assert ServiceConfig(case_timeout_s=5.0).supervisor_config().force_pool
        assert ServiceConfig(isolate_jobs=True).supervisor_config().force_pool


class TestJobStore:
    def _record(self, job_id: str, state: str = "queued") -> JobRecord:
        return JobRecord(job_id=job_id, key=f"key-{job_id}", spec={"nodes": 8}, state=state)

    def test_append_load_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        record = self._record("aaaa")
        store.append(record)
        record.state = "done"
        record.digest = "abc"
        store.append(record)
        loaded = JobStore(tmp_path).load()
        assert list(loaded) == ["aaaa"]
        assert loaded["aaaa"].state == "done"
        assert loaded["aaaa"].digest == "abc"

    def test_torn_tail_dropped(self, tmp_path):
        store = JobStore(tmp_path)
        store.append(self._record("aaaa", state="done"))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "job", "job_id": "bbbb", "sta')
        loaded = JobStore(tmp_path).load()
        assert list(loaded) == ["aaaa"]

    def test_mid_file_corruption_raises(self, tmp_path):
        store = JobStore(tmp_path)
        store.append(self._record("aaaa", state="done"))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write("NOT JSON\n")
            handle.write(json.dumps(self._record("bbbb").to_line()) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            JobStore(tmp_path).load()

    def test_unknown_state_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job state"):
            JobRecord.from_line({"kind": "job", "job_id": "x", "state": "zombie"})

    def test_compaction_keeps_latest_only(self, tmp_path):
        store = JobStore(tmp_path)
        record = self._record("aaaa")
        for state in ("queued", "running", "done"):
            record.state = state
            store.append(record)
        assert len(store.path.read_text().splitlines()) == 4  # header + 3
        store.compact({"aaaa": record})
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2  # header + 1
        assert JobStore(tmp_path).load()["aaaa"].state == "done"


class TestAdmission:
    """JobManager admission decisions, with no workers draining the
    queue — every outcome is deterministic."""

    def _manager(self, tmp_path, **overrides) -> JobManager:
        settings = dict(port=0, store_dir=tmp_path, queue_limit=2)
        settings.update(overrides)
        return JobManager(ServiceConfig(**settings))

    def test_queue_full_with_growing_retry_after(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.submit({"nodes": 8, "label": "a"})
        manager.submit({"nodes": 8, "label": "b"})
        with pytest.raises(QueueFull) as first:
            manager.submit({"nodes": 8, "label": "c"})
        with pytest.raises(QueueFull) as second:
            manager.submit({"nodes": 8, "label": "d"})
        assert first.value.retry_after_s > 0
        # streak 2 backs off at least as far as streak 1 (jitter aside,
        # the base doubles).
        assert second.value.retry_after_s > first.value.retry_after_s

    def test_dedup_bypasses_full_queue(self, tmp_path):
        manager = self._manager(tmp_path)
        job, created = manager.submit({"nodes": 8, "label": "a"})
        manager.submit({"nodes": 8, "label": "b"})
        again, created_again = manager.submit({"nodes": 8, "label": "a"})
        assert created and not created_again
        assert again is job
        assert job.record.dedup_hits == 1

    def test_draining_rejected(self, tmp_path):
        manager = self._manager(tmp_path)
        manager._draining = True
        with pytest.raises(ServiceDraining):
            manager.submit({"nodes": 8})

    def test_breaker_rejects_then_cooldown_recovers(self, tmp_path):
        manager = self._manager(
            tmp_path,
            breaker_window=4,
            breaker_threshold=0.5,
            breaker_min_samples=2,
            breaker_cooldown_s=0.2,
        )
        manager.breaker.record(False)
        manager.breaker.record(False)
        manager._breaker_opened_s = time.monotonic()
        assert manager.breaker.open
        assert not manager.ready
        with pytest.raises(ServiceNotReady) as info:
            manager.submit({"nodes": 8})
        assert info.value.retry_after_s >= 1.0
        time.sleep(0.25)
        assert manager.ready  # cooldown reset (half-open)
        job, created = manager.submit({"nodes": 8})
        assert created

    def test_submission_is_durable_before_ack(self, tmp_path):
        manager = self._manager(tmp_path)
        job, _ = manager.submit({"nodes": 8, "label": "durable"})
        loaded = JobStore(tmp_path).load()
        assert loaded[job.record.job_id].state == "queued"
        assert loaded[job.record.job_id].spec["label"] == "durable"


# ---------------------------------------------------------------------------
# live-server layer (thread-hosted, real sockets)
# ---------------------------------------------------------------------------
class LiveServer:
    """``serve()`` on a daemon thread, drained via its stop event."""

    def __init__(self, store_dir, **overrides):
        self.config = ServiceConfig(port=0, store_dir=store_dir, **overrides)
        self.server = None
        self.result = None
        self.error = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError(f"service did not start: {self.error}")

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced via stop()
            self.error = exc
            self._ready.set()

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()

        def on_ready(server):
            self.server = server
            self._ready.set()

        self.result = await serve(
            self.config, ready_callback=on_ready, stop_event=self._stop
        )

    def stop(self):
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        if self.error is not None:
            raise self.error
        return self.result

    # -- tiny blocking HTTP client ------------------------------------------
    @property
    def base(self) -> str:
        host, port = self.server.address
        return f"http://{host}:{port}"

    def get(self, path: str, timeout: float = 30.0):
        try:
            with urllib.request.urlopen(self.base + path, timeout=timeout) as resp:
                return resp.status, resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read(), dict(exc.headers)

    def get_json(self, path: str, timeout: float = 30.0):
        status, body, headers = self.get(path, timeout=timeout)
        return status, json.loads(body), headers

    def post_json(self, path: str, payload, timeout: float = 30.0):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read()), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), dict(exc.headers)

    def wait_terminal(self, job_id: str, timeout: float = 60.0) -> dict:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, payload, _ = self.get_json(f"/jobs/{job_id}")
            assert status == 200
            if payload["state"] in ("done", "failed"):
                return payload
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} not terminal after {timeout}s")


@pytest.fixture
def live(tmp_path):
    servers = []

    def factory(**overrides) -> LiveServer:
        store = tmp_path / f"store{len(servers)}"
        server = LiveServer(store, **overrides)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        try:
            server.stop()
        except Exception:
            pass


def sse_events(raw: bytes) -> list[dict]:
    return [
        json.loads(line[6:])
        for line in raw.decode("utf-8").splitlines()
        if line.startswith("data: ")
    ]


class TestHappyPath:
    def test_submit_poll_design_sse_metrics(self, live):
        server = live()
        status, ack, _ = server.post_json("/jobs", {"nodes": 8, "wl": 8, "label": "hp"})
        assert status == 201 and ack["created"]
        job_id = ack["job_id"]

        final = server.wait_terminal(job_id)
        assert final["state"] == "done"
        assert final["runs"] == 1
        assert final["digest"]

        status, design_bytes, headers = server.get(f"/jobs/{job_id}/design")
        assert status == 200
        assert headers["X-Design-Digest"] == final["digest"]
        design = json.loads(design_bytes)
        assert design["assignments"]

        # SSE after the fact replays the full history and terminates.
        status, raw, _ = server.get(f"/jobs/{job_id}/events")
        assert status == 200
        names = [event["event"] for event in sse_events(raw)]
        assert names[0] == "job_queued"
        assert names[-1] == "job_done"
        assert "case_start" in names and "case_done" in names
        assert all(event["job_id"] == job_id for event in sse_events(raw))

        status, health, _ = server.get_json("/healthz")
        assert status == 200 and health["status"] == "ok"
        status, ready, _ = server.get_json("/readyz")
        assert status == 200 and ready["ready"]

        status, metrics_bytes, _ = server.get("/metrics")
        text = metrics_bytes.decode("utf-8")
        assert status == 200
        assert text.endswith("# EOF\n")
        assert "xring_service_jobs_done_total 1" in text
        assert "xring_service_solves_total 1" in text

        status, listing, _ = server.get_json("/jobs")
        assert status == 200 and len(listing["jobs"]) == 1

    def test_sse_live_follow(self, live):
        server = live()
        _, ack, _ = server.post_json("/jobs", {"nodes": 8, "wl": 9, "label": "follow"})
        # Open the stream while the job runs and read to job_done.
        with urllib.request.urlopen(
            f"{server.base}/jobs/{ack['job_id']}/events", timeout=60
        ) as resp:
            names = []
            for raw_line in resp:
                line = raw_line.decode("utf-8").strip()
                if line.startswith("data: "):
                    names.append(json.loads(line[6:])["event"])
                    if names[-1] in ("job_done", "job_failed"):
                        break
        assert names[0] == "job_queued"
        assert names[-1] == "job_done"

    def test_error_routes(self, live):
        server = live()
        assert server.get("/nope")[0] == 404
        assert server.get("/jobs/unknown")[0] == 404
        assert server.get("/jobs/unknown/design")[0] == 404
        status, payload, _ = server.post_json("/jobs", {"nodez": 1})
        assert status == 400 and "unknown spec field" in payload["error"]
        request = urllib.request.Request(
            server.base + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        # GET on POST-only route
        status, payload, _ = server.post_json("/healthz", {})
        assert status == 404 or status == 405

    def test_oversized_body_rejected(self, live):
        server = live(max_body_bytes=1024)
        status, payload, _ = server.post_json(
            "/jobs", {"positions": [[float(i), float(i)] for i in range(200)]}
        )
        assert status == 413


class TestIdempotency:
    def test_concurrent_identical_posts_share_one_solve(self, live):
        server = live(max_concurrency=2)
        spec = {"nodes": 8, "wl": 8, "label": "idem"}
        results = []
        barrier = threading.Barrier(2)

        def submit():
            barrier.wait()
            results.append(server.post_json("/jobs", spec))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = sorted(status for status, _, _ in results)
        ids = {payload["job_id"] for _, payload, _ in results}
        assert statuses == [200, 201]  # exactly one creation
        assert len(ids) == 1
        server.wait_terminal(ids.pop())
        _, stats, _ = server.get_json("/stats")
        assert stats["solves"] == 1
        assert stats["admitted"] == 1
        assert stats["dedup_hits"] == 1

    def test_warm_resubmission_is_instant_and_solve_free(self, live):
        server = live()
        spec = {"nodes": 8, "wl": 8, "label": "warm"}
        _, ack, _ = server.post_json("/jobs", spec)
        server.wait_terminal(ack["job_id"])
        started = time.monotonic()
        status, again, _ = server.post_json("/jobs", spec)
        elapsed = time.monotonic() - started
        assert status == 200
        assert again["job_id"] == ack["job_id"]
        assert again["state"] == "done"
        assert elapsed < 1.0  # no solve, no queue trip
        _, stats, _ = server.get_json("/stats")
        assert stats["solves"] == 1
        assert stats["dedup_hits"] == 1


class TestBackpressure:
    def test_queue_full_yields_429_with_retry_after(self, live):
        server = live(queue_limit=1)
        # First job occupies the worker (~0.5s), second fills the
        # queue; everything after that must bounce with 429.
        acks = [server.post_json("/jobs", slow_spec(i)) for i in range(5)]
        statuses = [status for status, _, _ in acks]
        assert statuses[0] == 201
        assert 429 in statuses
        rejected = next(
            (payload, headers)
            for status, payload, headers in acks
            if status == 429
        )
        payload, headers = rejected
        assert "queue is full" in payload["error"]
        assert int(headers["Retry-After"]) >= 1
        # The rejections never hang or 500; admitted jobs still finish.
        for status, payload, _ in acks:
            if status == 201:
                final = server.wait_terminal(payload["job_id"])
                assert final["state"] == "done"
        _, stats, _ = server.get_json("/stats")
        assert stats["rejected_queue_full"] >= 1


class TestDeadlines:
    def test_expired_deadline_degrades_with_provenance(self, live):
        server = live()
        _, ack, _ = server.post_json(
            "/jobs", {"nodes": 8, "deadline": 0.001, "label": "rushed"}
        )
        final = server.wait_terminal(ack["job_id"])
        assert final["state"] == "done"
        assert final["degraded"]
        assert final["fallbacks"]
        status, _, headers = server.get(f"/jobs/{ack['job_id']}/design")
        assert status == 200
        assert headers["X-Degraded"] == "1"

    def test_deadline_with_on_error_raise_maps_to_504(self, live):
        server = live(retries=0)
        _, ack, _ = server.post_json(
            "/jobs",
            {"nodes": 8, "deadline": 0.001, "on_error": "raise", "label": "hard"},
        )
        final = server.wait_terminal(ack["job_id"])
        assert final["state"] == "failed"
        # The expired budget surfaces as the timeout family — the
        # stage-level StageTimeout or the whole-run DeadlineExceeded.
        assert final["error_type"] in ("DeadlineExceeded", "StageTimeout")
        status, provenance, _ = server.get_json(f"/jobs/{ack['job_id']}/design")
        assert status == 504
        assert provenance["error_type"] == final["error_type"]
        assert provenance["attempts"] == 1

    def test_default_deadline_applies_to_bare_specs(self, live):
        server = live(default_deadline_s=0.001)
        _, ack, _ = server.post_json("/jobs", {"nodes": 8, "label": "defaulted"})
        final = server.wait_terminal(ack["job_id"])
        assert final["state"] == "done"
        assert final["degraded"]

    def test_design_conflict_while_running(self, live):
        server = live()
        _, ack, _ = server.post_json("/jobs", slow_spec(99))
        status, payload, _ = server.get_json(f"/jobs/{ack['job_id']}/design")
        assert status == 409
        server.wait_terminal(ack["job_id"])


class TestReadiness:
    def test_breaker_opens_readyz_503_then_recovers(self, live):
        server = live(
            retries=0,
            breaker_window=4,
            breaker_threshold=0.5,
            breaker_min_samples=2,
            breaker_cooldown_s=1.5,
        )
        # Two deterministic failures trip the breaker.
        for index in range(2):
            _, ack, _ = server.post_json(
                "/jobs",
                {
                    "nodes": 8,
                    "deadline": 0.001,
                    "on_error": "raise",
                    "label": f"fail{index}",
                },
            )
            final = server.wait_terminal(ack["job_id"])
            assert final["state"] == "failed"
        status, ready, headers = server.get_json("/readyz")
        assert status == 503
        assert not ready["ready"]
        assert "breaker" in ready["reason"]
        assert int(headers["Retry-After"]) >= 1
        status, payload, _ = server.post_json("/jobs", {"nodes": 8, "label": "shed"})
        assert status == 503
        _, stats, _ = server.get_json("/stats")
        assert stats["rejected_breaker"] == 1
        # After the cooldown the breaker half-opens and traffic flows.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.get_json("/readyz")[0] == 200:
                break
            time.sleep(0.1)
        status, ack, _ = server.post_json("/jobs", {"nodes": 8, "wl": 8, "label": "ok"})
        assert status == 201
        assert server.wait_terminal(ack["job_id"])["state"] == "done"


# ---------------------------------------------------------------------------
# process-level chaos: kill -9 / SIGTERM against the real CLI
# ---------------------------------------------------------------------------
class ServerProcess:
    """``python -m repro serve`` as a child process."""

    def __init__(self, store_dir: Path, *extra_args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.store_dir = Path(store_dir)
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--store",
                str(store_dir),
                *extra_args,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.base = self._await_address()

    def _await_address(self) -> str:
        address_path = self.store_dir / "address"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server died at startup: {self.proc.stderr.read()}"
                )
            if address_path.exists():
                text = address_path.read_text().strip()
                if text:
                    host, _, port = text.rpartition(":")
                    # The file is written atomically, but make sure the
                    # listener actually answers before handing it out.
                    try:
                        with socket.create_connection((host, int(port)), 2):
                            pass
                    except OSError:
                        time.sleep(0.05)
                        continue
                    return f"http://{host}:{port}"
            time.sleep(0.05)
        raise RuntimeError("server never published its address")

    def get_json(self, path: str, timeout: float = 30.0):
        try:
            with urllib.request.urlopen(self.base + path, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def get_bytes(self, path: str, timeout: float = 30.0):
        with urllib.request.urlopen(self.base + path, timeout=timeout) as resp:
            return resp.status, resp.read()

    def post_json(self, path: str, payload, timeout: float = 30.0):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def kill9(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def sigterm(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=120)

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


@pytest.fixture
def spawn(tmp_path):
    procs = []

    def factory(*extra_args: str, store: str = "store") -> ServerProcess:
        proc = ServerProcess(tmp_path / store, *extra_args)
        procs.append(proc)
        return proc

    yield factory
    for proc in procs:
        proc.cleanup()


class TestCrashRecovery:
    JOBS = 20

    def test_sigkill_restart_no_duplicate_solves(self, spawn, tmp_path):
        """The headline acceptance: a burst of jobs, SIGKILL mid-run,
        restart on the same store; every job reaches a terminal state,
        nothing finished is re-solved, designs are byte-identical."""
        server = spawn()
        ids = []
        for index in range(self.JOBS):
            status, ack = server.post_json("/jobs", slow_spec(index))
            assert status == 201, ack
            ids.append(ack["job_id"])
        assert len(set(ids)) == self.JOBS

        # Wait until a prefix is done, then kill -9 mid-run.
        done_before: dict[str, dict] = {}
        deadline = time.monotonic() + 120
        while len(done_before) < 3 and time.monotonic() < deadline:
            for job_id in ids:
                if job_id in done_before:
                    continue
                _, status_payload = server.get_json(f"/jobs/{job_id}")
                if status_payload["state"] == "done":
                    done_before[job_id] = status_payload
        designs_before = {
            job_id: server.get_bytes(f"/jobs/{job_id}/design")[1]
            for job_id in done_before
        }
        assert len(done_before) >= 3, "jobs too fast/slow for the chaos window"
        server.kill9()

        # Restart on the same store: terminal jobs restored, the rest
        # re-adopted and finished.
        revived = spawn(store="store")
        _, stats = revived.get_json("/stats")
        assert stats["restored"] >= len(done_before)
        assert stats["restored"] + stats["adopted"] == self.JOBS
        # The kill must have landed mid-run for the test to mean
        # anything: at least one job needed re-adoption.
        assert stats["adopted"] >= 1, "SIGKILL landed after the whole burst"
        deadline = time.monotonic() + 180
        finals = {}
        while time.monotonic() < deadline and len(finals) < self.JOBS:
            for job_id in ids:
                if job_id in finals:
                    continue
                _, payload = revived.get_json(f"/jobs/{job_id}")
                if payload["state"] in ("done", "failed"):
                    finals[job_id] = payload
            time.sleep(0.05)
        assert len(finals) == self.JOBS, "jobs left non-terminal after restart"
        assert all(payload["state"] == "done" for payload in finals.values())

        for job_id, before in done_before.items():
            after = finals[job_id]
            # No duplicate solve: the pre-kill run is still the only one.
            assert after["runs"] == 1
            assert not after["resumed"]
            assert after["digest"] == before["digest"]
            # Byte-identical design across the crash.
            assert revived.get_bytes(f"/jobs/{job_id}/design")[1] == designs_before[job_id]
        # Exactly the re-adopted jobs carry resumed provenance.
        resumed = [
            job_id for job_id, payload in finals.items() if payload["resumed"]
        ]
        assert len(resumed) == stats["adopted"]

    def test_sigterm_drains_clean_exit_zero(self, spawn):
        server = spawn()
        status, ack = server.post_json("/jobs", {"nodes": 8, "wl": 8})
        assert status == 201
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, payload = server.get_json(f"/jobs/{ack['job_id']}")
            if payload["state"] == "done":
                break
            time.sleep(0.05)
        exit_code = server.sigterm()
        assert exit_code == 0
        stderr = server.proc.stderr.read()
        assert "drained cleanly" in stderr
        # The drain compacted the store: one line per job + header.
        store = JobStore(server.store_dir)
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2
        assert JobStore(server.store_dir).load()[ack["job_id"]].state == "done"

    def test_sigterm_mid_solve_finishes_in_flight(self, spawn):
        server = spawn()
        status, ack = server.post_json("/jobs", slow_spec(77))
        assert status == 201
        # Make sure the worker actually picked the job up before the
        # signal, so the drain has something in flight to wait on.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, payload = server.get_json(f"/jobs/{ack['job_id']}")
            if payload["state"] in ("running", "done"):
                break
            time.sleep(0.01)
        exit_code = server.sigterm()
        assert exit_code == 0  # in-flight job finished within the grace
        record = JobStore(server.store_dir).load()[ack["job_id"]]
        assert record.state == "done"
