"""Distributed trace propagation: context, annotation, stitching.

The acceptance bar for the cross-process tracer: a supervised
``workers=2`` batch yields **one connected trace tree per case and
zero orphaned spans** — including the chaos paths (worker crash retry,
poison-case quarantine), where attempts die mid-flight and their spans
must still stitch as siblings instead of dangling.
"""

from __future__ import annotations

import pytest

from repro.core.synthesizer import SynthesisOptions
from repro.obs import (
    TraceContext,
    annotate_span_records,
    current_trace,
    new_request_id,
    new_trace_id,
    parse_traceparent,
    spans_to_chrome,
    stitch_spans,
    use_trace,
)
from repro.parallel import BatchCase, BatchSynthesizer, SupervisorConfig
from repro.robustness import FaultPlan


def _cases(network, tour, count: int) -> list[BatchCase]:
    return [
        BatchCase(
            network=network,
            options=SynthesisOptions(
                ring_method="heuristic", wl_budget=4 + i, label=f"c{i}"
            ),
            label=f"c{i}",
            tour=tour,
        )
        for i in range(count)
    ]


def _fast_config(**overrides) -> SupervisorConfig:
    settings = dict(
        max_attempts=3,
        backoff_base_s=0.001,
        backoff_cap_s=0.01,
        poll_interval_s=0.02,
    )
    settings.update(overrides)
    return SupervisorConfig(**settings)


def _tree_check(records: list[dict]) -> dict:
    """Stitch and assert the no-dangling-parent invariant."""
    stitched = stitch_spans(records)
    assert stitched["orphans"] == []
    assert stitched["span_count"] == len(records)
    return stitched


# ---------------------------------------------------------------------------
# unit layer: context, ids, traceparent
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_ids_are_fresh_and_well_formed(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        assert len(a) == 32 and int(a, 16) >= 0
        rid = new_request_id()
        assert rid.startswith("req-") and len(rid) == 16

    def test_child_replaces_parent_and_keeps_trace(self):
        ctx = TraceContext.new(prefix="root")
        child = ctx.child("sup1:c0.a1", prefix="c0.a1")
        assert child.trace_id == ctx.trace_id
        assert child.parent_uid == "sup1:c0.a1"
        assert child.prefix == "c0.a1"
        # prefix falls back to the parent's when not given
        assert ctx.child("x").prefix == "root"

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new()
        parsed = parse_traceparent(ctx.traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.parent_uid is None  # no parent -> all-zero span id
        with_parent = ctx.child("job:abc")
        parsed = parse_traceparent(with_parent.traceparent())
        assert parsed.parent_uid is not None
        assert parsed.parent_uid.startswith("w3c:")

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-short-0000000000000000-01",
            "00-" + "g" * 32 + "-" + "0" * 16 + "-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        ],
    )
    def test_malformed_traceparent_is_none(self, header):
        assert parse_traceparent(header) is None

    def test_ambient_context_nests_and_restores(self):
        assert current_trace() is None
        outer = TraceContext.new()
        with use_trace(outer):
            assert current_trace() is outer
            inner = outer.child("p:1")
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None


class TestAnnotateAndStitch:
    def _records(self):
        # one local tracer export: root (id 1) with one child (id 2)
        return [
            {"name": "root", "span_id": 1, "parent_id": None, "start_s": 0.0},
            {"name": "leaf", "span_id": 2, "parent_id": 1, "start_s": 0.1},
        ]

    def test_annotate_stamps_identity(self):
        ctx = TraceContext(trace_id="f" * 32, parent_uid="up:9", prefix="w1")
        records = annotate_span_records(
            self._records(), ctx, pid=42, epoch_unix=100.0
        )
        root, leaf = records
        assert root["span_uid"] == "w1:1" and leaf["span_uid"] == "w1:2"
        assert root["parent_uid"] == "up:9"  # local root -> ctx parent
        assert leaf["parent_uid"] == "w1:1"  # local child -> local parent
        assert all(r["trace_id"] == "f" * 32 and r["pid"] == 42 for r in records)
        assert leaf["start_unix"] == pytest.approx(100.1)

    def test_stitch_detects_orphans(self):
        ctx = TraceContext(trace_id="a" * 32, parent_uid="gone:1", prefix="x")
        records = annotate_span_records(self._records(), ctx)
        stitched = stitch_spans(records)
        # the root's parent names a span not in the set -> broken stitch
        assert stitched["orphans"] == ["x:1"]
        assert stitched["trace_id"] == "a" * 32

    def test_w3c_parent_is_not_an_orphan(self):
        ctx = TraceContext(trace_id="a" * 32, parent_uid="w3c:" + "b" * 16)
        stitched = stitch_spans(annotate_span_records(self._records(), ctx))
        assert stitched["orphans"] == []
        assert stitched["roots"] == []  # parented upstream, not a root

    def test_unannotated_records_stitch_via_local_ids(self):
        stitched = stitch_spans(self._records())
        assert stitched["orphans"] == []
        assert stitched["roots"] == ["?1"]

    def test_chrome_export_labels_pid_rows(self):
        ctx = TraceContext.new()
        records = annotate_span_records(
            self._records(), ctx, pid=7, epoch_unix=50.0
        )
        records.append(
            {
                "name": "batch.attempt",
                "span_id": -1,
                "parent_id": None,
                "pid": 3,
                "span_uid": "sup3:c0.a1",
                "parent_uid": None,
                "start_unix": 49.5,
                "duration_s": 1.0,
            }
        )
        chrome = spans_to_chrome(records)
        meta = {
            e["pid"]: e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta == {3: "supervisor pid 3", 7: "worker pid 7"}
        # timestamps align on the earliest wall-clock anchor
        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in spans) == 0.0


# ---------------------------------------------------------------------------
# cross-process layer: the supervised pool stitches per-case trees
# ---------------------------------------------------------------------------
class TestWorkerStitching:
    def test_workers2_batch_yields_connected_trees(self, network8, tour8):
        """Acceptance: 4 cases across 2 workers -> per-case trees all
        hang off per-attempt roots, zero orphans, >= 2 distinct pids."""
        report = BatchSynthesizer(
            workers=2, collect_spans=True, config=_fast_config()
        ).run(_cases(network8, tour8, 4))
        assert report.ok
        stitched = _tree_check(report.span_records)
        # one batch.attempt root per case (fresh trace -> parent None)
        roots = set(stitched["roots"])
        attempts = {
            r["span_uid"]
            for r in report.span_records
            if r["name"] == "batch.attempt"
        }
        assert roots == attempts and len(roots) == 4
        pids = {r["pid"] for r in report.span_records}
        assert len(pids) >= 2  # supervisor + at least one worker
        # every worker-side case tree is parented to its attempt span
        for record in report.span_records:
            if record["name"] == "synthesize":
                assert record["parent_uid"] in attempts

    def test_external_context_becomes_the_single_root(self, network8, tour8):
        ctx = TraceContext(trace_id="c" * 32, parent_uid=None, prefix="req")
        with use_trace(ctx):
            report = BatchSynthesizer(
                workers=1, collect_spans=True, config=_fast_config()
            ).run(_cases(network8, tour8, 2))
        assert report.ok
        stitched = _tree_check(report.span_records)
        assert stitched["trace_id"] == "c" * 32

    def test_unsupervised_pool_traces_stitch(self, network8, tour8):
        """The journal/fault-free fast path (no supervisor) must yield
        the same connected shape."""
        report = BatchSynthesizer(
            workers=2, collect_spans=True, supervised=False
        ).run(_cases(network8, tour8, 3))
        assert report.ok
        stitched = _tree_check(report.span_records)
        prefixes = {
            r["span_uid"].split(":")[0] for r in report.span_records
        }
        assert prefixes == {"c0.a1", "c1.a1", "c2.a1"}
        assert stitched["trace_id"]

    def test_crash_retry_spans_stitch_as_siblings(self, network8, tour8):
        """A crashed first attempt loses its worker-side spans, but the
        supervisor's attempt records keep the tree connected and the
        retry's spans land under a *distinct* a2 root."""
        plan = FaultPlan().worker_crash("c1")
        report = BatchSynthesizer(
            workers=2,
            collect_spans=True,
            config=_fast_config(),
            fault_plan=plan,
        ).run(_cases(network8, tour8, 4))
        assert report.ok and plan.exhausted
        assert report.results[1].attempts == 2
        stitched = _tree_check(report.span_records)
        c1_attempts = {
            r["span_uid"]
            for r in report.span_records
            if r["name"] == "batch.attempt" and ":c1.a" in r["span_uid"]
        }
        assert len(c1_attempts) == 2  # a1 (crashed) and a2 (succeeded)
        assert c1_attempts <= set(stitched["roots"])

    def test_quarantined_case_still_stitches(self, network8, tour8):
        """Every failed attempt of a poison case leaves an attempt span;
        the trace stays connected even though the case never succeeds."""
        plan = (
            FaultPlan()
            .worker_crash("c1", attempt=1)
            .worker_crash("c1", attempt=2)
            .worker_crash("c1", attempt=3)
        )
        report = BatchSynthesizer(
            workers=2,
            collect_spans=True,
            config=_fast_config(max_attempts=3),
            fault_plan=plan,
        ).run(_cases(network8, tour8, 3))
        assert not report.ok
        assert [r.label for r in report.quarantined] == ["c1"]
        stitched = _tree_check(report.span_records)
        c1_attempts = [
            r
            for r in report.span_records
            if r["name"] == "batch.attempt" and ":c1.a" in r["span_uid"]
        ]
        assert len(c1_attempts) == 3
        assert all(r["attributes"]["outcome"] != "ok" for r in c1_attempts)
        # the healthy cases' full trees are present alongside
        assert any(r["name"] == "synthesize" for r in stitched["spans"])
