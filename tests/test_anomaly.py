"""Ledger anomaly mining (repro.obs.anomaly) and ``xring mine``.

The acceptance path: seed a multi-run ledger with one known-bad run
(a latency spike), mine it, and the outlier is flagged — through the
library *and* through the CLI, whose exit code (1) is the CI contract.
Direction-awareness and the zero-MAD floor get their own pins: a run
with an unusually *good* SNR must not be flagged, and a metric that is
byte-stable across runs must not flag float noise.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    RunLedger,
    RunRecord,
    mine_ledger,
    promote_candidates,
    robust_zscore,
)


def _record(index, label="ring16", wall_s=2.0, snr=18.0, retries=0,
            conflicts_rate=0.9, ring_p99=0.5):
    return RunRecord(
        run_id=f"synth-2026-{index:04d}",
        kind="synth",
        label=label,
        created_at=f"2026-08-01T00:{index:02d}:00Z",
        fingerprint=f"f{index:03d}",
        options_hash="oh-abc",
        wall_s=wall_s,
        stage_latency={"ring": {"count": 3, "p99": ring_p99}},
        cache={"conflicts": conflicts_rate},
        supervisor={"retries": retries, "resumed": False},
        quality={"snr_worst_db": snr, "signal_count": 16},
    )


class TestRobustZscore:
    def test_signed_sigma_estimate(self):
        # median 10, MAD 1 -> sigma ~1.4826; 13 sits ~+2 sigma out.
        assert robust_zscore(13.0, 10.0, 1.0) == pytest.approx(2.023, abs=0.01)
        assert robust_zscore(7.0, 10.0, 1.0) < 0

    def test_zero_mad_floor_absorbs_float_noise(self):
        assert robust_zscore(10.0 + 1e-6, 10.0, 0.0) == 0.0

    def test_zero_mad_real_deviation_is_infinite(self):
        assert robust_zscore(11.0, 10.0, 0.0) == float("inf")
        assert robust_zscore(9.0, 10.0, 0.0) == float("-inf")


class TestMineLedger:
    def test_seeded_latency_spike_is_flagged(self):
        records = [_record(i) for i in range(7)]
        records.append(_record(7, wall_s=40.0, ring_p99=20.0))
        report = mine_ledger(records, z_threshold=3.5)
        assert report.scanned == 8 and report.groups == 1
        flagged = report.flagged_runs
        assert flagged == ["synth-2026-0007"]
        metrics = {a.metric for a in report.anomalies}
        assert "wall_s" in metrics and "stage.ring.p99_s" in metrics

    def test_good_outliers_are_not_flagged(self):
        """Direction-awareness: an unusually fast run with unusually
        high SNR is a delight, not an anomaly."""
        records = [_record(i, wall_s=2.0 + 0.01 * i) for i in range(7)]
        records.append(_record(7, wall_s=0.1, snr=40.0))
        report = mine_ledger(records, z_threshold=3.5)
        assert report.anomalies == []

    def test_low_is_bad_metrics_flag_downward(self):
        records = [_record(i, snr=18.0 + 0.05 * i) for i in range(7)]
        records.append(_record(7, snr=2.0))
        report = mine_ledger(records)
        assert report.flagged_runs == ["synth-2026-0007"]
        assert any(a.metric == "quality.snr_worst_db" and a.direction == "low"
                   for a in report.anomalies)

    def test_cache_hit_rate_collapse_flags(self):
        records = [_record(i, conflicts_rate=0.9 + 0.001 * i) for i in range(7)]
        records.append(_record(7, conflicts_rate=0.05))
        report = mine_ledger(records)
        assert any(a.metric == "cache.conflicts.hit_rate"
                   for a in report.anomalies)

    def test_supervisor_retry_spike_flags(self):
        records = [_record(i, retries=i % 2) for i in range(8)]
        records.append(_record(8, retries=50))
        report = mine_ledger(records)
        assert any(a.metric == "supervisor.retries" for a in report.anomalies)

    def test_groups_are_isolated(self):
        """A slow-but-normal big case must not be judged against the
        small case's baseline."""
        small = [_record(i, label="small", wall_s=1.0) for i in range(5)]
        big = [_record(10 + i, label="big", wall_s=60.0 + i) for i in range(5)]
        report = mine_ledger(small + big)
        assert report.groups == 2 and report.anomalies == []

    def test_small_groups_are_skipped_not_judged(self):
        report = mine_ledger([_record(0), _record(1, wall_s=99.0)])
        assert report.anomalies == []
        assert report.skipped_small_groups == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            mine_ledger([], z_threshold=0.0)
        with pytest.raises(ValueError):
            mine_ledger([], min_runs=2)

    def test_report_is_json_safe(self):
        records = [_record(i, wall_s=2.0) for i in range(6)]
        records.append(_record(6, wall_s=99.0))
        report = mine_ledger(records)
        text = json.dumps(report.to_dict())  # inf must serialize
        assert "Infinity" not in text
        assert report.render_text().startswith("mined 7 run(s)")


class TestPromotion:
    def test_candidate_stubs_written(self, tmp_path):
        records = [_record(i) for i in range(6)]
        records.append(_record(6, wall_s=50.0))
        report = mine_ledger(records)
        paths = promote_candidates(report, records, tmp_path / "cand")
        assert len(paths) == 1
        stub = json.loads(paths[0].read_text())
        assert stub["run_id"] == "synth-2026-0006"
        assert stub["options_hash"] == "oh-abc"
        assert stub["status"] == "needs-review"
        assert any(m["metric"] == "wall_s" for m in stub["flagged_metrics"])


class TestMineCLI:
    def _seed(self, directory, records):
        ledger = RunLedger(directory)
        for record in records:
            ledger.append(record)
        return ledger

    def test_flagged_ledger_exits_1(self, tmp_path, capsys):
        records = [_record(i) for i in range(6)]
        records.append(_record(6, wall_s=50.0))
        self._seed(tmp_path, records)
        out = tmp_path / "report.json"
        code = main([
            "mine", "--history-dir", str(tmp_path),
            "--json", str(out), "--promote", str(tmp_path / "cand"),
        ])
        assert code == 1
        assert "synth-2026-0006" in capsys.readouterr().out
        assert json.loads(out.read_text())["flagged_runs"] == [
            "synth-2026-0006"
        ]
        assert (tmp_path / "cand" / "candidate-synth-2026-0006.json").exists()

    def test_clean_ledger_exits_0(self, tmp_path):
        self._seed(tmp_path, [_record(i) for i in range(5)])
        assert main(["mine", "--history-dir", str(tmp_path)]) == 0

    def test_insufficient_data_exits_2(self, tmp_path):
        self._seed(tmp_path, [_record(0)])
        assert main(["mine", "--history-dir", str(tmp_path)]) == 2

    def test_bad_parameters_exit_2(self, tmp_path):
        assert main(["mine", "--history-dir", str(tmp_path),
                     "--min-runs", "1"]) == 2
