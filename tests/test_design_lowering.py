"""Detailed tests of the design-to-circuit lowering.

These pin the coordinate conventions (opened-ring reparameterization,
CCW mirroring, CSE leg geometry) and conservation invariants across
wavelength budgets.
"""

import pytest

from repro.analysis import evaluate_circuit, signal_loss
from repro.core import SynthesisOptions, XRingSynthesizer, synthesize
from repro.core.mapping import Direction
from repro.network import Network
from repro.network.placement import psion_placement
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES


@pytest.fixture(scope="module")
def design16(network16, tour16):
    return XRingSynthesizer(
        network16, SynthesisOptions(wl_budget=16)
    ).run(tour=tour16)


@pytest.fixture(scope="module")
def circuit16(design16):
    return design16.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)


class TestCoordinateConventions:
    def test_ring_guides_opened(self, design16, circuit16):
        for ring in design16.mapping.rings:
            assert ring.opening_node is not None
        ring_guides = [
            g for g in circuit16.waveguides.values() if g.kind == "ring"
        ]
        assert ring_guides and all(not g.closed for g in ring_guides)

    def test_ring_guide_lengths(self, design16, circuit16):
        for guide in circuit16.waveguides.values():
            if guide.kind == "ring":
                assert guide.length == pytest.approx(design16.tour.length_mm)

    def test_ring_leg_lengths_match_arcs(self, design16, circuit16):
        tour = design16.tour
        by_sid = {s.sid: s for s in circuit16.signals}
        sid = 0
        for (src, dst), assignment in sorted(
            design16.mapping.assignments.items()
        ):
            signal = by_sid[sid]
            guide = circuit16.waveguides[signal.legs[0].wid]
            arc = guide.arc_length(signal.legs[0].start, signal.legs[0].end)
            expected = (
                tour.cw_distance(src, dst)
                if assignment.direction is Direction.CW
                else tour.ccw_distance(src, dst)
            )
            assert arc == pytest.approx(expected, abs=1e-6)
            sid += 1

    def test_shortcut_routes_shorter_than_ring(self, design16, circuit16):
        tour = design16.tour
        for signal in circuit16.signals:
            guide = circuit16.waveguides[signal.legs[0].wid]
            if guide.kind != "shortcut":
                continue
            total = sum(
                circuit16.waveguides[leg.wid].arc_length(leg.start, leg.end)
                for leg in signal.legs
            )
            ring_best = min(
                tour.cw_distance(signal.src, signal.dst),
                tour.ccw_distance(signal.src, signal.dst),
            )
            assert total < ring_best + 1e-6

    def test_terminal_filters_match_destinations(self, design16, circuit16):
        for signal in circuit16.signals:
            flt = circuit16.terminal_filter(signal)
            assert flt is not None
            assert flt.node == signal.dst
            assert flt.wavelength == signal.wavelength


class TestConservationAcrossBudgets:
    @pytest.mark.parametrize("budget", [6, 10, 16])
    def test_every_budget_serves_all_demands(self, network16, tour16, budget):
        design = XRingSynthesizer(
            network16, SynthesisOptions(wl_budget=budget)
        ).run(tour=tour16)
        circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
        assert len(circuit.signals) == 240
        pairs = {(s.src, s.dst) for s in circuit.signals}
        assert pairs == set(network16.demands())

    @pytest.mark.parametrize("budget", [6, 10, 16])
    def test_budget_respected_in_circuit(self, network16, tour16, budget):
        design = XRingSynthesizer(
            network16, SynthesisOptions(wl_budget=budget)
        ).run(tour=tour16)
        circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
        # Ring-mapped signals obey the budget; shortcut signals reuse
        # the lowest four indices (Sec. III-C), which 6+ budgets cover.
        assert max(s.wavelength for s in circuit.signals) < budget

    @pytest.mark.parametrize("budget", [6, 10, 16])
    def test_analysis_never_rejects_assignment(self, network16, tour16, budget):
        design = XRingSynthesizer(
            network16, SynthesisOptions(wl_budget=budget)
        ).run(tour=tour16)
        circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
        # signal_loss raises on same-wavelength conflicts: sweeping the
        # budget must never produce one.
        for signal in circuit.signals:
            signal_loss(circuit, signal, ORING_LOSSES)

    def test_budget_tradeoff_monotone_rings(self, network16, tour16):
        ring_counts = []
        for budget in (4, 8, 16):
            design = XRingSynthesizer(
                network16, SynthesisOptions(wl_budget=budget)
            ).run(tour=tour16)
            ring_counts.append(design.ring_count)
        assert ring_counts[0] >= ring_counts[1] >= ring_counts[2]


class TestCcwMirroring:
    def test_ccw_positions_mirror(self, design16):
        tour = design16.tour
        ccw_rings = [
            r for r in design16.mapping.rings if r.direction is Direction.CCW
        ]
        assert ccw_rings, "expected at least one CCW ring"
        ring = ccw_rings[0]
        a, b = tour.order[1], tour.order[2]
        pos_a = design16._guide_position(a, ring)
        pos_b = design16._guide_position(b, ring)
        # b follows a in CW order, so in the CCW frame b comes first.
        delta = (pos_a - pos_b) % tour.length_mm
        assert delta == pytest.approx(tour.cw_distance(a, b), abs=1e-6)


class TestNoiseOrderOnFullDesign:
    def test_second_order_keeps_xring_clean(self, circuit16):
        evaluation = evaluate_circuit(
            circuit16, ORING_LOSSES, NIKDAST_CROSSTALK, noise_order=2
        )
        assert evaluation.noisy_signals <= 0.02 * evaluation.signal_count
