"""Unit tests for the batch engine and the synthesis cache."""

from __future__ import annotations

import pytest

from repro.core.shortcuts import ShortcutPlan, copy_plan
from repro.core.synthesizer import SynthesisOptions
from repro.geometry import Point, build_edge_conflicts
from repro.network import Network
from repro.obs import MetricsRegistry
from repro.parallel import (
    BatchCase,
    BatchError,
    BatchSynthesizer,
    SynthesisCache,
    canonical_points,
    clear_caches,
    get_cache,
)
from repro.robustness.errors import ConfigurationError


def _heuristic_case(network: Network, label: str, **options) -> BatchCase:
    options.setdefault("ring_method", "heuristic")
    return BatchCase(
        network=network,
        options=SynthesisOptions(label=label, **options),
        label=label,
    )


@pytest.fixture
def fresh_cache():
    clear_caches()
    yield get_cache()
    clear_caches()


class TestBatchSynthesizer:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            BatchSynthesizer(workers=0)
        with pytest.raises(ConfigurationError):
            BatchSynthesizer(on_error="ignore")

    def test_results_in_input_order(self, network8, network16):
        cases = [
            _heuristic_case(network16, "big"),
            _heuristic_case(network8, "small"),
            _heuristic_case(network8, "small/half", wl_budget=4),
        ]
        report = BatchSynthesizer(workers=2).run(cases)
        assert [r.label for r in report.results] == [
            "big",
            "small",
            "small/half",
        ]
        assert [r.index for r in report.results] == [0, 1, 2]
        assert report.ok
        assert all(d is not None for d in report.designs)

    def test_failed_case_is_collected_not_fatal(self, network8):
        duplicated = [Point(0.0, 0.0)] * 4
        bad = BatchCase(
            network=Network.from_positions(duplicated),
            options=SynthesisOptions(ring_method="heuristic"),
            label="bad",
        )
        report = BatchSynthesizer(workers=1).run(
            [_heuristic_case(network8, "good"), bad]
        )
        assert not report.ok
        assert [r.label for r in report.errors] == ["bad"]
        assert "InputError" in report.errors[0].error
        assert report.results[0].ok
        assert report.metrics.snapshot()["counters"]["batch.failures"] == 1

    def test_on_error_raise_names_first_failure(self, network8):
        duplicated = [Point(0.0, 0.0)] * 4
        bad = BatchCase(
            network=Network.from_positions(duplicated),
            options=SynthesisOptions(ring_method="heuristic"),
            label="bad",
        )
        with pytest.raises(BatchError, match="bad"):
            BatchSynthesizer(workers=1, on_error="raise").run([bad])

    def test_merged_metrics_accumulate_across_cases(self, network8):
        cases = [
            _heuristic_case(network8, f"case{i}") for i in range(3)
        ]
        report = BatchSynthesizer(workers=1).run(cases)
        counters = report.metrics.snapshot()["counters"]
        assert counters["batch.cases"] == 3
        assert counters["batch.failures"] == 0
        # Each case ran its own registry; the merge folds them, so
        # per-case counters appear with a batch-wide total.
        per_case = report.results[0].metrics["counters"]
        for name, value in per_case.items():
            assert counters[name] >= value

    def test_tour_sharing_constructs_step1_once(self, network8):
        cases = [
            _heuristic_case(network8, "sweep/4", wl_budget=4),
            _heuristic_case(network8, "sweep/8", wl_budget=8),
        ]
        report = BatchSynthesizer(workers=1, share_tours=True).run(cases)
        assert report.ok
        first, second = report.designs
        assert first.tour.order == second.tour.order
        # The shared tour is attached before fan-out, so both runs
        # record Step 1 as provided rather than constructed.
        for design in report.designs:
            assert design.report.stage("ring").status == "provided"

    def test_spans_carry_case_labels(self, network8):
        report = BatchSynthesizer(workers=1, collect_spans=True).run(
            [_heuristic_case(network8, "traced")]
        )
        assert report.span_records
        assert {s["case"] for s in report.span_records} == {"traced"}
        assert {"synthesize"} <= {s["name"] for s in report.span_records}


class TestMergeSnapshot:
    def test_counters_gauges_histograms_merge_exactly(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set(7.5)
        source.histogram("h").observe(0.02)
        source.histogram("h").observe(5.0)

        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.merge_snapshot(source.snapshot())

        snap = target.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["total"] == 2
        assert snap["histograms"]["h"]["sum"] == pytest.approx(5.02)
        assert snap["histograms"]["h"]["min"] == pytest.approx(0.02)
        assert snap["histograms"]["h"]["max"] == pytest.approx(5.0)

    def test_empty_histogram_merges_as_empty(self):
        source = MetricsRegistry()
        source.histogram("h")
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot()["histograms"]["h"]["total"] == 0


class TestSynthesisCache:
    POINTS = [
        Point(0.0, 0.0),
        Point(0.4, 0.0),
        Point(0.4, 0.4),
        Point(0.0, 0.4),
    ]

    def test_canonical_points_preserves_order(self):
        key = canonical_points(self.POINTS)
        assert key == ((0.0, 0.0), (0.4, 0.0), (0.4, 0.4), (0.0, 0.4))

    def test_conflicts_built_once_per_floorplan(self, fresh_cache):
        calls = []

        def build():
            calls.append(1)
            return build_edge_conflicts(self.POINTS)

        first = fresh_cache.conflicts_for(self.POINTS, build)
        second = fresh_cache.conflicts_for(self.POINTS, build)
        assert first is second
        assert len(calls) == 1
        stats = fresh_cache.stats()["conflicts"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_result_caching_is_opt_in(self, fresh_cache):
        fresh_cache.tour_put("heuristic", self.POINTS, "tour")
        fresh_cache.plan_put("key", ShortcutPlan())
        assert fresh_cache.tour_get("heuristic", self.POINTS) is None
        assert fresh_cache.plan_get("key") is None
        # Disabled lookups must not pollute the counters.
        assert fresh_cache.stats()["tours"]["misses"] == 0
        assert fresh_cache.stats()["plans"]["misses"] == 0

        fresh_cache.enable_result_caching(True)
        try:
            fresh_cache.tour_put("heuristic", self.POINTS, "tour")
            assert fresh_cache.tour_get("heuristic", self.POINTS) == "tour"
        finally:
            fresh_cache.enable_result_caching(False)

    def test_copy_plan_shields_cached_original(self):
        plan = ShortcutPlan(shortcuts=[], served={})
        clone = copy_plan(plan)
        clone.shortcuts.append("corrupted")
        clone.served[(0, 1)] = ()
        assert plan.shortcuts == []
        assert plan.served == {}

    def test_lru_eviction_respects_capacity(self):
        cache = SynthesisCache(capacity=2)
        for i in range(3):
            cache.conflicts.put(i, i)
        assert cache.conflicts.stats()["size"] == 2
        assert cache.conflicts.get(0) is None  # evicted
        assert cache.conflicts.get(2) == 2

    def test_clear_caches_resets_counters(self, fresh_cache):
        fresh_cache.conflicts_for(
            self.POINTS, lambda: build_edge_conflicts(self.POINTS)
        )
        clear_caches()
        stats = get_cache().stats()["conflicts"]
        assert stats == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "hit_rate": 0.0,
        }
