"""Unit and property tests for rectilinear polygons, plus the ring
interior invariants the shortcut construction relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, RectilinearPolygon


def square(side=4.0):
    return RectilinearPolygon(
        [Point(0, 0), Point(side, 0), Point(side, side), Point(0, side)]
    )


def l_shape():
    return RectilinearPolygon(
        [
            Point(0, 0),
            Point(4, 0),
            Point(4, 2),
            Point(2, 2),
            Point(2, 4),
            Point(0, 4),
        ]
    )


class TestPolygonBasics:
    def test_square_area_perimeter(self):
        sq = square()
        assert sq.area() == pytest.approx(16.0)
        assert sq.perimeter() == pytest.approx(16.0)

    def test_l_shape_area(self):
        assert l_shape().area() == pytest.approx(12.0)

    def test_containment(self):
        sq = square()
        assert sq.contains(Point(2, 2))
        assert not sq.contains(Point(5, 2))
        assert not sq.contains(Point(-1, 2))

    def test_boundary_policy(self):
        sq = square()
        assert sq.contains(Point(4, 2), include_boundary=True)
        assert not sq.contains(Point(4, 2), include_boundary=False)

    def test_concave_notch(self):
        shape = l_shape()
        assert shape.contains(Point(1, 3))  # in the vertical leg
        assert shape.contains(Point(3, 1))  # in the horizontal leg
        assert not shape.contains(Point(3, 3))  # inside the notch

    def test_vertex_ray_not_double_counted(self):
        shape = l_shape()
        # A point whose +x ray passes exactly through polygon vertices.
        assert shape.contains(Point(1, 2))

    def test_duplicate_and_closing_vertices_cleaned(self):
        poly = RectilinearPolygon(
            [Point(0, 0), Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4), Point(0, 0)]
        )
        assert len(poly.vertices) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RectilinearPolygon([Point(0, 0), Point(1, 1), Point(2, 0), Point(1, -1)])
        with pytest.raises(ValueError):
            RectilinearPolygon([Point(0, 0), Point(1, 0)])

    @given(
        st.integers(min_value=-4, max_value=20),
        st.integers(min_value=-4, max_value=20),
    )
    @settings(max_examples=100)
    def test_containment_matches_box(self, ix, iy):
        # Quarter-unit raster keeps points decisively on one side.
        x, y = ix * 0.25, iy * 0.25
        sq = square()
        expected = 0 <= x <= 4 and 0 <= y <= 4
        assert sq.contains(Point(x, y)) == expected


class TestRingAsPolygon:
    def test_from_tour(self, tour16):
        poly = RectilinearPolygon.from_paths(tour16.edge_paths)
        assert poly.perimeter() == pytest.approx(tour16.length_mm)
        assert poly.area() > 0

    def test_nodes_on_boundary(self, tour16):
        poly = RectilinearPolygon.from_paths(tour16.edge_paths)
        for point in tour16.points:
            assert poly.on_boundary(point)

    def test_shortcut_chords_side_consistent(self, tour16):
        """A crossing-free chord stays on one side of the ring.

        By the Jordan curve theorem, a path between two boundary
        points that never crosses the closed curve lies entirely in
        the interior or entirely in the exterior — never both.  (Both
        sides are legal in the zero-offset nested-ring model; the
        invariant is consistency.)
        """
        from repro.core.shortcuts import select_shortcuts
        from repro.photonics import ORING_LOSSES

        poly = RectilinearPolygon.from_paths(tour16.edge_paths)
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        assert plan.shortcuts
        for shortcut in plan.shortcuts:
            sides = set()
            for seg in shortcut.path.segments:
                midpoint = seg.a.midpoint(seg.b)
                if poly.on_boundary(midpoint):
                    continue
                # Ignore points within the grid-snap attach zone of a
                # terminal, where the chord hugs the boundary.
                endpoints = (
                    tour16.points[shortcut.node_a],
                    tour16.points[shortcut.node_b],
                )
                if any(midpoint.manhattan(e) <= 0.5 for e in endpoints):
                    continue
                sides.add(poly.contains(midpoint, include_boundary=False))
            assert len(sides) <= 1, (
                f"shortcut {shortcut.node_a}-{shortcut.node_b} switches "
                "sides of the ring"
            )
