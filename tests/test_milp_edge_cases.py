"""MILP backend edge cases: infeasibility, node limits, deadlines.

The fake-clock :class:`Deadline` (each read advances one virtual
second) makes timeout paths fully deterministic: the same model and
budget always stop at the same pivot.
"""

from __future__ import annotations

import time

import pytest

from repro.core.ring import construct_ring_tour
from repro.milp.branch_bound import solve_with_branch_bound
from repro.milp.expression import lin_sum
from repro.milp.model import Model, SolveStatus
from repro.network.placement import psion_placement
from repro.robustness import ConfigurationError, Deadline, StageTimeout


class Tick:
    """A virtual clock: every read advances one second."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def knapsack_model() -> Model:
    """A 12-binary knapsack whose B&B tree has a known node profile:
    no incumbent before node ~21, proof complete by node ~50."""
    model = Model("knapsack")
    vals = [9, 8, 7, 7, 6, 6, 5, 5, 4, 4, 3, 3]
    wts = [7, 6, 6, 5, 5, 4, 4, 3, 3, 2, 2, 2]
    xs = [model.binary_var(f"x{i}") for i in range(len(vals))]
    model.add_constraint(lin_sum(x * w for x, w in zip(xs, wts)) <= 17)
    model.maximize(lin_sum(x * v for x, v in zip(xs, vals)))
    return model


@pytest.mark.parametrize("backend", ["scipy", "branch_bound"])
class TestInfeasibility:
    def test_lp_infeasible(self, backend):
        model = Model("lp-infeasible")
        x = model.add_var("x", lb=0.0, ub=1.0)
        model.add_constraint(x * 1.0 >= 2.0)
        model.minimize(x)
        solution = model.solve(backend=backend)
        assert solution.status is SolveStatus.INFEASIBLE
        assert not solution.has_solution

    def test_integer_infeasible_but_lp_feasible(self, backend):
        # The relaxation has solutions in [0.2, 0.8] but no integer
        # point exists; both backends must prove infeasibility, not
        # round or error out.
        model = Model("int-infeasible")
        x = model.add_var("x", lb=0.0, ub=1.0, integer=True)
        model.add_constraint(x * 1.0 >= 0.2)
        model.add_constraint(x * 1.0 <= 0.8)
        model.minimize(x)
        solution = model.solve(backend=backend)
        assert solution.status is SolveStatus.INFEASIBLE


class TestNodeLimit:
    def test_exhaustion_with_incumbent_is_feasible(self):
        solution = solve_with_branch_bound(knapsack_model(), max_nodes=30)
        assert solution.status is SolveStatus.FEASIBLE
        assert solution.has_solution
        assert not solution.is_optimal
        assert "node limit" in solution.message
        # The incumbent is a real feasible point of the model.
        model = knapsack_model()
        assert all(c.satisfied_by(solution.values) for c in model.constraints)

    def test_exhaustion_without_incumbent_is_error(self):
        solution = solve_with_branch_bound(knapsack_model(), max_nodes=5)
        assert solution.status is SolveStatus.ERROR
        assert not solution.has_solution
        assert "node limit" in solution.message

    def test_generous_limit_stays_optimal(self):
        solution = solve_with_branch_bound(knapsack_model(), max_nodes=500)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-26.0)


class TestDeadlines:
    def test_expiry_with_incumbent_keeps_it(self):
        deadline = Deadline(50.0, clock=Tick())
        solution = solve_with_branch_bound(knapsack_model(), deadline=deadline)
        assert solution.status is SolveStatus.TIMEOUT
        assert solution.has_solution
        assert solution.objective == pytest.approx(-26.0)
        assert "incumbent" in solution.message

    def test_expiry_before_incumbent_returns_empty_timeout(self):
        deadline = Deadline(5.0, clock=Tick())
        solution = solve_with_branch_bound(knapsack_model(), deadline=deadline)
        assert solution.status is SolveStatus.TIMEOUT
        assert not solution.has_solution

    def test_solve_short_circuits_on_spent_deadline(self):
        deadline = Deadline(1.0)
        deadline.consume(2.0)
        solution = knapsack_model().solve(
            backend="branch_bound", deadline=deadline
        )
        assert solution.status is SolveStatus.TIMEOUT
        assert "before solve started" in solution.message

    def test_backends_agree_on_the_optimum(self):
        by_backend = {
            backend: knapsack_model().solve(backend=backend)
            for backend in ("scipy", "branch_bound")
        }
        assert all(s.is_optimal for s in by_backend.values())
        assert by_backend["scipy"].objective == pytest.approx(
            by_backend["branch_bound"].objective
        )

    def test_unknown_backend_is_typed(self):
        with pytest.raises(ConfigurationError):
            knapsack_model().solve(backend="gurobi")


class TestRingTourTimeLimit:
    def test_spent_deadline_raises_stage_timeout(self):
        points, _ = psion_placement(8)
        deadline = Deadline(1.0)
        deadline.consume(2.0)
        with pytest.raises(StageTimeout) as excinfo:
            construct_ring_tour(
                list(points), backend="branch_bound", deadline=deadline
            )
        assert excinfo.value.stage == "ring"

    def test_tiny_time_limit_terminates_promptly(self):
        # The pure-Python backend must honor ``time_limit``: either it
        # surfaces an in-budget incumbent (tour flagged ``timed_out``)
        # or raises StageTimeout — but it must not run unbounded.
        points, _ = psion_placement(16)
        before = time.monotonic()
        try:
            tour = construct_ring_tour(
                list(points), backend="branch_bound", time_limit=0.2
            )
            assert tour.timed_out
            assert sorted(tour.order) == list(range(16))
        except StageTimeout:
            pass
        assert time.monotonic() - before < 30.0

    def test_generous_limit_not_flagged(self, tour8):
        assert not tour8.timed_out
