"""CLI surface of the observability PR: ``xring trace`` and
``--profile-dir``.

One real heuristic synth produces the artifacts; the ``trace``
subcommand then reads them back.  The batch path additionally checks
that the richer cross-process ``trace.jsonl`` written by the batch
engine is *not* overwritten by the parent tracer's near-empty spans
on exit (the ``_trace_written`` contract).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SYNTH = ["synth", "--nodes", "8", "--ring-method", "heuristic"]


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """One synth run with both --trace-dir and --profile-dir."""
    root = tmp_path_factory.mktemp("cli_obs")
    rc = main(
        SYNTH
        + [
            "--trace-dir",
            str(root / "trace"),
            "--profile-dir",
            str(root / "prof"),
        ]
    )
    assert rc == 0
    return root


class TestProfileDir:
    def test_profile_artifacts_written(self, artifacts):
        prof = artifacts / "prof"
        assert (prof / "profile.collapsed").exists()
        assert (prof / "profile.speedscope.json").exists()
        summary = json.loads((prof / "profile.json").read_text())
        assert summary["samples"] > 0
        assert summary["stages"]

    def test_report_carries_stage_attribution(self, artifacts):
        report = json.loads(
            (artifacts / "trace" / "report.json").read_text()
        )
        assert report["profile"]["samples"] > 0
        assert set(report["profile"]["stages"]) <= {
            "ring",
            "shortcuts",
            "mapping",
            "pdn",
            "validate",
            "other",
        }


class TestTraceSubcommand:
    def test_renders_rollup_and_top_spans(self, artifacts, capsys):
        rc = main(["trace", str(artifacts / "trace" / "trace.jsonl")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 root(s)" in out  # single-process tree, one root
        assert "per-name rollup" in out
        assert "synthesize" in out

    def test_chrome_reexport(self, artifacts, tmp_path, capsys):
        out_path = tmp_path / "re.json"
        rc = main(
            [
                "trace",
                str(artifacts / "trace" / "trace.jsonl"),
                "--chrome",
                str(out_path),
            ]
        )
        assert rc == 0
        doc = json.loads(out_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "synthesize" in names and "process_name" in names

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        rc = main(["trace", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "trace" in capsys.readouterr().err

    def test_corrupt_file_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "ok"}\nnot json\n')
        rc = main(["trace", str(bad)])
        assert rc == 2
        assert "line 2" in capsys.readouterr().err


class TestBatchTraceNotClobbered:
    def test_batch_writes_cross_process_trace(self, tmp_path):
        cases = tmp_path / "cases.json"
        cases.write_text(
            json.dumps(
                [
                    {"nodes": 8, "wl": 8, "ring_method": "heuristic"},
                    {"nodes": 8, "wl": 9, "ring_method": "heuristic"},
                ]
            )
        )
        trace_dir = tmp_path / "trace"
        rc = main(
            [
                "batch",
                str(cases),
                "--workers",
                "2",
                "--trace-dir",
                str(trace_dir),
            ]
        )
        assert rc == 0
        records = [
            json.loads(line)
            for line in (trace_dir / "trace.jsonl")
            .read_text()
            .splitlines()
        ]
        # the batch engine's annotated spans survived main()'s exit
        # hook: attempt spans + per-case worker trees, not the parent
        # tracer's own (caseless) spans
        assert any(r["name"] == "batch.attempt" for r in records)
        assert any(r["name"] == "synthesize" for r in records)
        assert all("span_uid" in r for r in records)
        chrome = json.loads((trace_dir / "trace.json").read_text())
        assert any(
            e["ph"] == "M" and "pid" in e for e in chrome["traceEvents"]
        )
