"""Crash-consistency and durability suite for the L2 synthesis cache.

Four layers:

- :class:`PersistentStore` unit tests: atomic-write discipline, torn
  writes injected through :class:`FaultPlan`, bit-flip quarantine,
  degraded mode on an unusable root, LRU gc;
- batch-level durability: a restarted process re-serves finished
  results from disk (``cache.l2.hits == cases``) with byte-identical
  design digests, independently of any journal;
- worker cache-stat truthfulness: ``--workers N`` batch reports fold
  the per-worker cache hit/miss deltas into ``report.cache_stats``;
- service warm restart: a second server life on a *different* job
  store but the same ``cache_dir`` serves a repeated POST from the L2.
"""

from __future__ import annotations

import os

import pytest

from repro.core.synthesizer import SynthesisOptions
from repro.parallel import (
    BatchCase,
    BatchSynthesizer,
    PersistentStore,
    clear_caches,
    configure_l2,
    get_cache,
    result_digest,
)
from repro.parallel.store import (
    ENTRY_SUFFIX,
    QUARANTINE_DIRNAME,
    counter_metric_name,
)
from repro.robustness.faults import FaultPlan

from tests.test_service import LiveServer, slow_spec


@pytest.fixture
def fresh_cache():
    clear_caches()
    yield get_cache()
    clear_caches()


def _heuristic_case(network, label: str, **options) -> BatchCase:
    options.setdefault("ring_method", "heuristic")
    return BatchCase(
        network=network,
        options=SynthesisOptions(label=label, **options),
        label=label,
    )


def _entry_files(root):
    return [
        p
        for p in root.rglob(f"*{ENTRY_SUFFIX}")
        if QUARANTINE_DIRNAME not in p.parts
    ]


# ---------------------------------------------------------------------------
# PersistentStore unit layer
# ---------------------------------------------------------------------------
class TestPersistentStore:
    def test_roundtrip_and_miss(self, tmp_path):
        store = PersistentStore(tmp_path / "l2")
        assert store.get("results", "k1") is None
        assert store.put("results", "k1", b"payload", {"digest": "abc"})
        assert store.get("results", "k1") == (b"payload", {"digest": "abc"})
        assert store.counters["puts:results"] == 1
        assert store.counters["hits:results"] == 1
        assert store.counters["misses:results"] == 1

    def test_restart_survives(self, tmp_path):
        PersistentStore(tmp_path / "l2").put("results", "k1", b"durable", {})
        reopened = PersistentStore(tmp_path / "l2")
        assert reopened.get("results", "k1") == (b"durable", {})

    def test_torn_tmp_leaves_no_entry(self, tmp_path):
        plan = FaultPlan().store_torn_tmp("results")
        store = PersistentStore(tmp_path / "l2", fault_plan=plan)
        assert not store.put("results", "k1", b"never lands", {})
        assert plan.exhausted
        # The partial temp file exists but is invisible to every read
        # and enumeration path.
        assert store.get("results", "k1") is None
        assert store.keys() == {}
        assert store.verify()["checked"] == 0
        # The next put (fault consumed) goes through cleanly.
        assert store.put("results", "k1", b"lands", {})
        assert store.get("results", "k1") == (b"lands", {})

    def test_torn_final_is_quarantined_on_read(self, tmp_path):
        plan = FaultPlan().store_torn_final("results")
        store = PersistentStore(tmp_path / "l2", fault_plan=plan)
        assert not store.put("results", "k1", b"x" * 64, {})
        # A torn file *does* sit at the final path ...
        assert len(_entry_files(store.root)) == 1
        # ... but the checksum gate quarantines it instead of serving.
        assert store.get("results", "k1") is None
        assert store.counters["quarantined"] == 1
        assert store.quarantine_dir.exists()
        assert len(_entry_files(store.root)) == 0

    def test_bit_flip_is_quarantined_not_served(self, tmp_path):
        store = PersistentStore(tmp_path / "l2")
        store.put("results", "k1", b"y" * 128, {"digest": "d"})
        (entry,) = _entry_files(store.root)
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF
        entry.write_bytes(bytes(blob))
        assert store.get("results", "k1") is None
        assert store.counters["quarantined"] == 1
        # The corrupt bytes moved aside; a rescan finds nothing to flag.
        assert store.verify() == {"checked": 0, "quarantined": 0, "bytes": 0}

    def test_scrub_detects_corruption(self, tmp_path):
        store = PersistentStore(tmp_path / "l2")
        store.put("results", "good", b"g" * 32, {})
        store.put("results", "bad", b"b" * 32, {})
        for entry in _entry_files(store.root):
            header = entry.read_bytes().partition(b"\n")[0]
            if b'"bad"' in header:
                entry.write_bytes(entry.read_bytes()[:-4])
        report = store.verify()
        assert report["checked"] == 2
        assert report["quarantined"] == 1
        assert store.get("results", "good") is not None

    def test_unusable_root_degrades_without_raising(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store root should go")
        store = PersistentStore(blocker / "l2")
        assert store.disabled
        assert not store.put("results", "k1", b"dropped", {})
        assert store.get("results", "k1") is None
        assert store.stats()["disabled"]

    def test_gc_evicts_least_recently_used(self, tmp_path):
        store = PersistentStore(tmp_path / "l2")
        for i in range(4):
            store.put("results", f"k{i}", bytes(100), {})
        files = {p.name: p for p in _entry_files(store.root)}
        # Age k0/k1, keep k2/k3 fresh (mtime is the LRU clock).
        for name, path in files.items():
            if name.startswith(("k0", "k1")):
                os.utime(path, (1, 1))
        total = sum(p.stat().st_size for p in files.values())
        report = store.gc(max_bytes=total // 2)
        assert report["evicted"] == 2
        assert store.get("results", "k3") is not None
        assert store.get("results", "k0") is None
        assert store.counters["evicted"] == 2

    def test_counter_metric_mapping(self):
        assert counter_metric_name("hits:results") == "cache.l2.hits"
        assert counter_metric_name("misses:results") == "cache.l2.misses"
        assert counter_metric_name("puts:results") == "cache.l2.puts"
        assert counter_metric_name("quarantined") == "cache.store.quarantined"
        assert counter_metric_name("evicted") == "cache.store.evicted"
        assert counter_metric_name("failovers") == "cache.l2.failovers"
        assert counter_metric_name("errors") == "cache.l2.errors"
        # Conflicts-section traffic is counted ambient-side in cache.py;
        # mapping it here would double-count on batch join.
        assert counter_metric_name("hits:conflicts") is None
        assert counter_metric_name("breaker_opens") is None


# ---------------------------------------------------------------------------
# batch-level durability
# ---------------------------------------------------------------------------
class TestBatchL2Durability:
    def _run(self, cases):
        report = BatchSynthesizer(workers=1, on_error="collect").run(cases)
        assert report.ok
        return report

    def test_restart_serves_results_from_disk(
        self, tmp_path, fresh_cache, network8, network16
    ):
        cases = [
            _heuristic_case(network8, "a"),
            _heuristic_case(network16, "b"),
        ]
        configure_l2(tmp_path / "l2")
        first = self._run(cases)
        digests = [result_digest(r) for r in first.results]
        assert not any(r.cached for r in first.results)

        # Simulated process restart: the L1 and its backend handle are
        # gone, only the files remain.  No journal anywhere.
        clear_caches()
        backend = configure_l2(tmp_path / "l2")
        second = self._run(cases)
        assert all(r.cached for r in second.results)
        assert [result_digest(r) for r in second.results] == digests
        assert backend.counters["hits:results"] == len(cases)
        counters = second.metrics.snapshot()["counters"]
        assert counters["cache.l2.hits"] == len(cases)

    def test_corrupt_entry_is_recomputed_never_deserialized(
        self, tmp_path, fresh_cache, network8, network16
    ):
        cases = [
            _heuristic_case(network8, "a"),
            _heuristic_case(network16, "b"),
        ]
        configure_l2(tmp_path / "l2")
        first = self._run(cases)
        digests = [result_digest(r) for r in first.results]

        clear_caches()
        backend = configure_l2(tmp_path / "l2")
        # Flip a byte in one results entry (headers identify sections).
        flipped = 0
        for entry in _entry_files(backend.root):
            if b'"section": "results"' in entry.read_bytes().partition(b"\n")[0]:
                blob = bytearray(entry.read_bytes())
                blob[-1] ^= 0xFF
                entry.write_bytes(bytes(blob))
                flipped += 1
                break
        assert flipped == 1
        second = self._run(cases)
        assert all(r.ok for r in second.results)
        assert [result_digest(r) for r in second.results] == digests
        # One served from disk, one quarantined + recomputed.
        assert sum(1 for r in second.results if r.cached) == len(cases) - 1
        assert backend.counters["quarantined"] == 1
        counters = second.metrics.snapshot()["counters"]
        assert counters["cache.store.quarantined"] == 1
        assert counters["cache.l2.hits"] == len(cases) - 1

    def test_torn_result_write_is_a_clean_miss_next_run(
        self, tmp_path, fresh_cache, network8
    ):
        cases = [_heuristic_case(network8, "a")]
        plan = FaultPlan().store_torn_tmp("results")
        get_cache().attach_l2(
            PersistentStore(tmp_path / "l2", fault_plan=plan)
        )
        first = self._run(cases)
        digests = [result_digest(r) for r in first.results]
        assert plan.exhausted

        clear_caches()
        backend = configure_l2(tmp_path / "l2")
        second = self._run(cases)
        # The torn write never landed: recompute, identical result,
        # and this time the entry persists.
        assert not second.results[0].cached
        assert [result_digest(r) for r in second.results] == digests
        assert backend.counters.get("puts:results", 0) == 1

        clear_caches()
        configure_l2(tmp_path / "l2")
        third = self._run(cases)
        assert third.results[0].cached
        assert [result_digest(r) for r in third.results] == digests


# ---------------------------------------------------------------------------
# worker cache-stat truthfulness (--workers N)
# ---------------------------------------------------------------------------
class TestWorkerCacheStats:
    def test_pool_worker_hits_fold_into_report(self, fresh_cache, network8):
        # Two milp cases on one floorplan: each worker process builds
        # (or memo-hits) the conflict dict in *its own* cache; the
        # parent's L1 never sees that traffic.
        cases = [
            BatchCase(
                network=network8,
                options=SynthesisOptions(label=f"c{i}", wl_budget=8 + i),
                label=f"c{i}",
            )
            for i in range(2)
        ]
        report = BatchSynthesizer(workers=2, share_tours=False).run(cases)
        assert report.ok
        parent_conflicts = get_cache().stats()["conflicts"]
        folded = report.cache_stats["conflicts"]
        # The parent process built nothing, yet the report shows the
        # workers' builds: the per-case snapshots carried them home.
        assert parent_conflicts["misses"] == 0
        assert folded["misses"] >= 1
        assert folded["hits"] + folded["misses"] >= 2


# ---------------------------------------------------------------------------
# service warm restart through the L2
# ---------------------------------------------------------------------------
class TestServiceWarmRestart:
    def test_second_life_serves_repeat_post_from_l2(self, tmp_path):
        clear_caches()
        cache_dir = tmp_path / "l2"
        spec = slow_spec(0)
        try:
            first = LiveServer(tmp_path / "store1", cache_dir=str(cache_dir))
            status, ack, _ = first.post_json("/jobs", spec)
            assert status == 201
            done = first.wait_terminal(ack["job_id"])
            assert done["state"] == "done"
            digest = done["digest"]
            first.stop()

            # New life, *different* job store (no adoption, no dedup) —
            # only the shared cache_dir can explain a hit.
            clear_caches()
            second = LiveServer(tmp_path / "store2", cache_dir=str(cache_dir))
            status, ack2, _ = second.post_json("/jobs", spec)
            assert status == 201 and ack2["created"]
            done2 = second.wait_terminal(ack2["job_id"])
            assert done2["state"] == "done"
            assert done2["digest"] == digest
            status, stats, _ = second.get_json("/stats")
            assert status == 200
            assert stats["cache_l2_result_hits"] == 1
            assert stats["cache_l2"]["counters"]["hits:results"] == 1
            second.stop()
        finally:
            clear_caches()
