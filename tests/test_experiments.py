"""Smoke and shape tests for the table harnesses.

These run the real experiment code on reduced sweeps so the full table
generation stays in ``benchmarks/``, while the shape claims the paper
makes are still asserted here.
"""

import pytest

from repro.experiments import (
    best_setting,
    format_table1,
    format_table2,
    format_table3,
    run_shortcut_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_wavelength_sweep,
    sweep_ring_router,
)
from repro.experiments.ablations import format_ablation


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(8, budgets=[8])


@pytest.fixture(scope="module")
def table2_blocks():
    return run_table2(sizes=(8,), budgets={8: [6, 8]})


@pytest.fixture(scope="module")
def table3_blocks():
    return run_table3(budgets=[16])


class TestTable1:
    def test_row_count_and_labels(self, table1_rows):
        assert [r.tool for r in table1_rows] == [
            "Proton+",
            "PlanarONoC",
            "ToPro",
            "Ornoc",
            "Oring",
            "Xring",
        ]

    def test_crossbars_worse_than_rings(self, table1_rows):
        crossbars = table1_rows[:3]
        rings = table1_rows[3:]
        assert min(c.il_w for c in crossbars) > max(r.il_w for r in rings)

    def test_rings_no_crossings(self, table1_rows):
        for row in table1_rows[3:]:
            assert row.crossings == 0

    def test_headline_reduction(self, table1_rows):
        """XRing cuts worst-case il by > 40% vs the crossbar tools."""
        xring = table1_rows[-1]
        best_crossbar = min(r.il_w for r in table1_rows[:3])
        assert xring.il_w < 0.6 * best_crossbar

    def test_format(self, table1_rows):
        text = format_table1(table1_rows)
        assert "il_w" in text and "Proton+" in text


class TestTable2:
    def test_block_structure(self, table2_blocks):
        assert [b.objective for b in table2_blocks] == ["power", "snr"]

    def test_xring_beats_ornoc(self, table2_blocks):
        for block in table2_blocks:
            # At 8 nodes the paper reports power parity (0.04 W both);
            # XRing must stay within a whisker and win decisively on
            # noise.
            assert block.xring.power_w <= 1.15 * block.ornoc.power_w
            assert block.xring.noisy < block.ornoc.noisy

    def test_xring_mostly_noise_free(self, table2_blocks):
        for block in table2_blocks:
            fraction = 1 - block.xring.noisy / block.xring.signal_count
            assert fraction > 0.98

    def test_format(self, table2_blocks):
        text = format_table2(table2_blocks)
        assert "SNR_w" in text and "ORNoC" in text


class TestTable3:
    def test_xring_beats_oring(self, table3_blocks):
        for block in table3_blocks:
            assert block.xring.power_w < block.oring.power_w
            assert block.xring.noisy < block.oring.noisy

    def test_oring_mostly_noisy(self, table3_blocks):
        for block in table3_blocks:
            assert block.oring.noisy / block.oring.signal_count > 0.5

    def test_format(self, table3_blocks):
        text = format_table3(table3_blocks)
        assert "ORing" in text and "XRing" in text


class TestSweepsAndAblations:
    def test_best_setting_objectives(self, network8, tour8):
        rows = sweep_ring_router(network8, "xring", [6, 8], tour=tour8)
        power_best = best_setting(rows, "power")
        snr_best = best_setting(rows, "snr")
        il_best = best_setting(rows, "il")
        assert power_best.power_w == min(r.power_w for _, r in rows)
        assert il_best.il_w == min(r.il_w for _, r in rows)
        assert snr_best is not None

    def test_best_setting_validation(self, network8, tour8):
        rows = sweep_ring_router(network8, "xring", [8], tour=tour8)
        with pytest.raises(ValueError):
            best_setting(rows, "bogus")
        with pytest.raises(ValueError):
            best_setting([], "power")

    def test_unknown_router_kind(self, network8):
        with pytest.raises(ValueError):
            sweep_ring_router(network8, "bogus", [8])

    def test_shortcut_ablation(self, tour16):
        rows = run_shortcut_ablation(16, wl_budget=16, tour=tour16)
        variants = {r.variant: r.row for r in rows}
        assert set(variants) == {"full", "no-shortcuts", "no-openings", "bare"}
        # Removing the internal PDN (openings) must hurt noise.
        assert variants["no-openings"].noisy > variants["full"].noisy
        text = format_ablation(rows)
        assert "no-shortcuts" in text

    def test_wavelength_sweep_runs(self):
        rows = run_wavelength_sweep(8, budgets=[6, 8])
        assert len(rows) == 2
        assert all(row.power_w > 0 for _, row in rows)
