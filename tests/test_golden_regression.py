"""Golden regression fixtures for four canonical designs.

Each fixture in ``tests/golden/`` is the full structural dump
(:meth:`~repro.core.design.XRingDesign.to_dict`) of one synthesis run
that the flow must keep reproducing bit-for-bit: tour order, shortcut
set, wavelength assignments, ring openings, PDN feeds.  Any behaviour
change — intended or not — shows up as a structural diff naming the
exact paths that moved.

After an *intentional* change, regenerate and review::

    PYTHONPATH=src pytest tests/test_golden_regression.py --update-golden
    git diff tests/golden/

The designs cover the main configurations: the paper's default XRing
flow (MILP Step 1, internal PDN), the heuristic Step-1 alternative,
the closed-ring baseline-style variant (no openings, external PDN),
and a 64-node run through the lazy cutting-plane ring MILP and the
vectorized conflict kernel (both only engage at that scale).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.network import Network
from repro.network.placement import (
    extended_placement,
    oring_placement,
    psion_placement,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

CANONICAL = {
    "xring8_default": lambda: _synthesize(
        psion_placement(8), SynthesisOptions(label="xring8")
    ),
    "xring16_heuristic": lambda: _synthesize(
        psion_placement(16),
        SynthesisOptions(ring_method="heuristic", label="xring16/heuristic"),
    ),
    "oring16_closed": lambda: _synthesize(
        oring_placement(),
        SynthesisOptions(
            enable_openings=False,
            pdn_mode="external",
            label="xring16/closed",
        ),
    ),
    # Beyond the paper's table: pins the lazy cutting-plane ring MILP
    # and the vectorized conflict kernel, which only engage at scale.
    "xring64_lazy": lambda: _synthesize(
        extended_placement(64),
        SynthesisOptions(lazy_conflicts=True, label="xring64/lazy"),
    ),
}


def _synthesize(placement, options):
    points, die = placement
    network = Network.from_positions(points, die=die)
    return XRingSynthesizer(network, options).run()


def _normalize(report: dict) -> dict:
    """JSON round-trip so fixture and live dict share one type system."""
    return json.loads(json.dumps(report, sort_keys=True))


def _diff(expected, actual, path="$") -> list[str]:
    """Readable structural diff: one line per divergent path."""
    if type(expected) is not type(actual):
        return [
            f"{path}: type {type(expected).__name__} -> {type(actual).__name__}"
        ]
    if isinstance(expected, dict):
        lines = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                lines.append(f"{path}.{key}: unexpected key")
            elif key not in actual:
                lines.append(f"{path}.{key}: missing key")
            else:
                lines.extend(_diff(expected[key], actual[key], f"{path}.{key}"))
        return lines
    if isinstance(expected, list):
        lines = []
        if len(expected) != len(actual):
            lines.append(
                f"{path}: length {len(expected)} -> {len(actual)}"
            )
        for i, (e, a) in enumerate(zip(expected, actual)):
            lines.extend(_diff(e, a, f"{path}[{i}]"))
        return lines
    if expected != actual:
        return [f"{path}: {expected!r} -> {actual!r}"]
    return []


@pytest.mark.parametrize("name", sorted(CANONICAL))
def test_golden_design(name, update_golden):
    current = _normalize(CANONICAL[name]().to_dict())
    fixture = GOLDEN_DIR / f"{name}.json"

    if update_golden:
        from repro.obs import atomic_write_text

        GOLDEN_DIR.mkdir(exist_ok=True)
        # Atomic: an interrupted --update-golden run never leaves a
        # half-written fixture that silently fails future compares.
        atomic_write_text(
            fixture, json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        return

    assert fixture.exists(), (
        f"golden fixture {fixture} is missing; generate it with "
        f"pytest {__file__} --update-golden"
    )
    expected = json.loads(fixture.read_text(encoding="utf-8"))
    differences = _diff(expected, current)
    assert not differences, (
        f"design {name!r} diverged from its golden fixture "
        f"({len(differences)} path(s)); if the change is intentional, "
        f"regenerate with --update-golden and review the diff:\n"
        + "\n".join(differences[:40])
    )
