"""Fleet observability against live processes.

Three live layers over the shared test harnesses:

- **chaos SLO**: a real server with a fast scrape/SLO configuration
  takes an injected worker-crash burst (``FaultPlan`` through the
  manager's chaos hook); the availability alert must fire within the
  scrape window, show up in ``/alerts``, the dashboard payload and the
  ``--alert-log`` JSONL, then clear with hysteresis once healthy
  traffic resumes — the acceptance scenario;
- **federation**: a cache node's ``GET /metrics`` OpenMetrics endpoint
  and the service's ``GET /federate`` merge (own registry + scraped
  nodes, one ``# EOF``, partial-fleet tolerance);
- **xring top**: one ``--once`` frame rendered over HTTP.
"""

from __future__ import annotations

import io
import json
import time
import urllib.request

import pytest

from repro.robustness import FaultPlan
from repro.service.top import run_top
from tests.test_service import LiveServer, slow_spec
from tests.test_shard_ring import NodeThread


@pytest.fixture
def live(tmp_path):
    servers = []

    def factory(**overrides) -> LiveServer:
        store = tmp_path / f"store{len(servers)}"
        server = LiveServer(store, **overrides)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        try:
            server.stop()
        except Exception:
            pass


@pytest.fixture
def node(tmp_path):
    thread = NodeThread(tmp_path / "node")
    yield thread
    thread.stop()


def _wait(predicate, timeout_s=20.0, interval_s=0.1, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(interval_s)
    raise AssertionError(f"{what} not reached within {timeout_s}s")


class TestChaosSLO:
    """Injected failure burst -> alert fires -> recovery -> clears."""

    def test_availability_alert_fires_and_clears(self, live, tmp_path):
        alert_log = tmp_path / "alerts.jsonl"
        server = live(
            retries=0,
            scrape_interval_s=0.1,
            slo_window_s=2.0,
            slo_availability=0.5,
            slo_burn_threshold=1.5,
            alert_log=alert_log,
        )
        # Chaos: the next three labeled jobs crash their (simulated)
        # worker on attempt 1; with retries=0 each job fails outright.
        plan = FaultPlan()
        for i in range(3):
            plan.worker_crash(f"slow{i}", 1)
        server.server.manager.fault_plan = plan
        for i in range(3):
            _, submit, _ = server.post_json("/jobs", slow_spec(i))
            assert server.wait_terminal(submit["job_id"])["state"] == "failed"

        # Fire: every job in both burn windows failed -> burn 2.0x
        # against the 1.5x threshold; one scrape pair is enough.
        payload = _wait(
            lambda: (lambda p: p if p[1]["alerts"] else None)(
                server.get_json("/alerts")
            ),
            what="availability alert firing",
        )[1]
        (alert,) = [
            a
            for a in payload["alerts"]
            if a["alert"] == "service-availability"
        ]
        assert alert["severity"] == "page"
        assert any(w["burn"] >= 1.5 for w in alert["windows"] if w["data"])
        assert payload["scrapes"] > 0

        # The same alert reaches the dashboard payload and the JSONL log.
        _, data, _ = server.get_json("/dashboard/data")
        assert [a["alert"] for a in data["alerts"]["active"]] == [
            "service-availability"
        ]
        firing_lines = [
            json.loads(line) for line in alert_log.read_text().splitlines()
        ]
        assert firing_lines[0]["event"] == "alert_firing"
        assert firing_lines[0]["alert"] == "service-availability"

        # Recovery: the fault plan is exhausted; healthy jobs dilute
        # the long window below burn 1.0 and hysteresis (2s) clears.
        for i in range(6):
            _, submit, _ = server.post_json("/jobs", slow_spec(100 + i))
            assert server.wait_terminal(submit["job_id"])["state"] == "done"
        payload = _wait(
            lambda: (lambda p: p if not p[1]["alerts"] else None)(
                server.get_json("/alerts")
            ),
            timeout_s=30.0,
            what="availability alert clearing",
        )[1]
        events = [e["event"] for e in payload["recent"]]
        assert "alert_resolved" in events and "alert_firing" in events
        resolved = [
            json.loads(line) for line in alert_log.read_text().splitlines()
        ][-1]
        assert resolved["event"] == "alert_resolved"
        assert resolved["fired_for_s"] > 0

    def test_timeseries_persisted_in_store(self, live):
        server = live(scrape_interval_s=0.05)
        _wait(
            lambda: (server.config.store_dir / "timeseries.jsonl").exists(),
            what="timeseries persistence",
        )
        _, payload, _ = server.get_json("/alerts")
        assert payload["scrape_interval_s"] == pytest.approx(0.05)


class TestFederation:
    def test_cache_node_metrics_endpoint(self, node):
        with urllib.request.urlopen(
            f"http://{node.address}/metrics", timeout=10
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "application/openmetrics-text"
            )
            text = resp.read().decode()
        assert text.count("# EOF") == 1 and text.endswith("# EOF\n")
        assert "xring_cache_node_entries 0" in text
        assert "# TYPE xring_cache_node_uptime_s gauge" in text

    def test_federate_merges_service_and_nodes(self, live, node):
        server = live(cache_nodes=(node.address,), cache_replication=1)
        _, submit, _ = server.post_json("/jobs", slow_spec(0))
        server.wait_terminal(submit["job_id"])
        status, body, headers = server.get("/federate")
        assert status == 200
        assert headers["Content-Type"].startswith("application/openmetrics-text")
        assert headers["X-Federate-Sources"] == "2/2"  # self + node
        text = body.decode()
        assert text.count("# EOF") == 1
        # Own registry and the scraped node land in one exposition.
        assert "xring_service_jobs_done_total 1" in text
        assert "xring_cache_node_entries" in text
        # The L2 traffic the solve made is visible on both sides:
        # client-side miss counters from the service registry, store
        # counters scraped off the node.
        assert "xring_cache_l2_conflicts_misses_total" in text
        assert "xring_cache_node_puts_results_total 1" in text
        # /metrics (self-only) stays distinct from /federate.
        status, own, _ = server.get("/metrics")
        assert "xring_cache_node_entries" not in own.decode()

    def test_federate_tolerates_dead_nodes(self, live, node):
        server = live(
            cache_nodes=(node.address, "127.0.0.1:9"),
            cache_replication=1,
        )
        status, body, headers = server.get("/federate")
        assert status == 200
        assert headers["X-Federate-Sources"] == "2/3"  # self + 1 of 2 nodes
        assert body.decode().count("# EOF") == 1

    def test_request_id_reaches_cache_nodes(self, node):
        """The service stamps its solver thread's ambient request id
        onto every L2 node call; the node echoes it back."""
        from repro.obs import use_request_id
        from repro.parallel.shard import ShardClient

        client = ShardClient([node.address], replication=1)
        with use_request_id("req-fleet-0001"):
            status, _, headers = client._request(
                node.address, "GET", "/entry?section=results&key=missing"
            )
        assert status == 404
        assert headers.get("x-request-id") == "req-fleet-0001"


class TestTopCLI:
    def test_once_frame_over_http(self, live, capsys):
        server = live(scrape_interval_s=0.1)
        _, submit, _ = server.post_json("/jobs", slow_spec(0))
        server.wait_terminal(submit["job_id"])
        out = io.StringIO()
        code = run_top(url=server.base, once=True, out=out)
        assert code == 0
        frame = out.getvalue()
        assert "state=ready" in frame
        assert "done" in frame and "alerts:" in frame
        assert "slow0" in frame

    def test_once_against_dead_service_exits_1(self):
        assert run_top(url="http://127.0.0.1:9", once=True) == 1

    def test_store_address_resolution(self, live):
        server = live()
        out = io.StringIO()
        code = run_top(store=str(server.config.store_dir), once=True, out=out)
        assert code == 0
        assert "xring service" in out.getvalue()

    def test_missing_store_exits_1(self, tmp_path):
        assert run_top(store=str(tmp_path / "nope"), once=True) == 1


class TestDashboardFleetPayload:
    def test_cache_and_sparkline_sections(self, live, node):
        server = live(
            cache_nodes=(node.address,),
            cache_replication=1,
            scrape_interval_s=0.1,
        )
        # A spec index no other test uses: the process-wide conflict
        # memo would otherwise absorb a repeat solve before it reaches
        # the L2 tier, leaving no cache.l2.* counters to assert on.
        _, submit, _ = server.post_json("/jobs", slow_spec(300))
        server.wait_terminal(submit["job_id"])
        _wait(
            lambda: server.get_json("/dashboard/data")[1]["sparklines"],
            what="sparkline history",
        )
        _, data, _ = server.get_json("/dashboard/data")
        # Satellite: the payload carries the L2 stats the page charts.
        assert data["cache"]["l2"] is not None
        assert data["cache"]["l2"]["nodes"] is not None
        assert any(
            name.startswith("cache.l2.") for name in data["cache"]["counters"]
        )
        assert "cache_l2_result_hits" in data["stats"]
        assert data["alerts"]["slos"]  # every SLO evaluated
        name, points = next(iter(data["sparklines"].items()))
        assert name in data["sparkline_panels"]
        assert all(len(p) == 2 for p in points)
