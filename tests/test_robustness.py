"""The resilience subsystem: deadlines, typed errors, fault injection.

The integration tests drive :class:`XRingSynthesizer` with scripted
:class:`FaultPlan`\\ s and assert the contract of the degradation
chain: every degraded path terminates within the deadline, the result
still passes ``validate_design``, and the attached
:class:`SynthesisReport` records what happened.  Stalls burn deadline
budget without sleeping, so the whole suite runs in real milliseconds.
"""

from __future__ import annotations

import time

import pytest

from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.core.validate import validate_design
from repro.robustness import (
    ConfigurationError,
    Deadline,
    DeadlineExceeded,
    FaultInjected,
    FaultPlan,
    InputError,
    StageRecord,
    SynthesisError,
    SynthesisReport,
    ValidationFailure,
)
from repro.robustness.report import (
    STATUS_FALLBACK,
    STATUS_OK,
    STATUS_PROVIDED,
    STATUS_REPAIRED,
    STATUS_SKIPPED,
)


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check("anywhere")  # must not raise

    def test_consume_burns_budget_without_sleeping(self):
        deadline = Deadline(10.0)
        before = time.monotonic()
        deadline.consume(9.999)
        assert time.monotonic() - before < 1.0
        assert deadline.elapsed() >= 9.999
        deadline.consume(1.0)
        assert deadline.expired()

    def test_check_raises_typed_error_with_stage(self):
        deadline = Deadline(1.0)
        deadline.consume(2.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("mapping")
        assert excinfo.value.stage == "mapping"
        assert excinfo.value.cause == "timeout"
        assert isinstance(excinfo.value, SynthesisError)

    def test_clamp_folds_stage_limit_into_budget(self):
        deadline = Deadline(10.0)
        assert deadline.clamp(3.0) == pytest.approx(3.0, abs=0.5)
        deadline.consume(9.0)
        assert deadline.clamp(3.0) == pytest.approx(1.0, abs=0.5)
        assert Deadline.unlimited().clamp(None) is None
        assert Deadline.unlimited().clamp(5.0) == 5.0

    def test_stage_accounting_includes_consumed_time(self):
        deadline = Deadline(100.0)
        with deadline.stage("ring"):
            deadline.consume(4.0)
        assert deadline.stage_elapsed_s["ring"] >= 4.0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestErrorTaxonomy:
    def test_configuration_error_is_value_error(self):
        # Legacy call sites guard with ``except ValueError``.
        err = ConfigurationError("bad knob")
        assert isinstance(err, ValueError)
        assert isinstance(err, SynthesisError)
        assert err.stage == "options"

    def test_str_carries_stage_and_cause(self):
        err = SynthesisError("boom", stage="ring", cause="infeasible")
        assert "[ring/infeasible]" in str(err)

    def test_validation_failure_keeps_violations(self):
        err = ValidationFailure("broken", violations=("v1", "v2"))
        assert err.violations == ("v1", "v2")
        assert err.context["violations"] == ["v1", "v2"]


class TestReport:
    def test_clean_report_is_not_degraded(self):
        report = SynthesisReport()
        report.record(StageRecord("ring"))
        assert not report.degraded
        assert report.fallbacks == ()
        assert report.summary() == "clean"

    def test_fallbacks_and_dict_roundtrip(self):
        report = SynthesisReport(deadline_s=5.0)
        report.record(
            StageRecord("ring", status=STATUS_FALLBACK, fallback="heuristic_ring")
        )
        assert report.degraded
        assert report.fallbacks == ("ring:heuristic_ring",)
        dumped = report.to_dict()
        assert dumped["degraded"] is True
        assert dumped["fallbacks"] == ["ring:heuristic_ring"]
        assert dumped["stages"][0]["name"] == "ring"


class TestFaultPlan:
    def test_faults_are_one_shot(self):
        plan = FaultPlan().error("ring")
        deadline = Deadline.unlimited()
        with pytest.raises(FaultInjected):
            plan.apply_before("ring", deadline)
        plan.apply_before("ring", deadline)  # second call: nothing left
        assert plan.exhausted

    def test_unknown_corruption_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().corrupt("mapping", "no_such_mutation")


class TestEagerOptionValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ring_method": "quantum"},
            {"shortcut_selection": "vibes"},
            {"pdn_mode": "bogus"},
            {"mapping_order": "random"},
            {"direction_policy": "widdershins"},
            {"milp_backend": "cplex"},
            {"on_error": "panic"},
            {"milp_time_limit": 0.0},
            {"deadline_s": -5.0},
        ],
    )
    def test_bad_options_fail_at_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            SynthesisOptions(**kwargs)

    def test_bad_options_also_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            SynthesisOptions(pdn_mode="bogus")

    def test_non_positive_wl_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisOptions(wl_budget=0)
        with pytest.raises(ConfigurationError):
            SynthesisOptions(wl_budget=-3)

    def test_none_wl_budget_defaults_to_node_count(self, network8, tour8):
        # The old ``opts.wl_budget or N`` idiom; None must mean N and
        # nothing else.
        design = XRingSynthesizer(
            network8, SynthesisOptions(wl_budget=None)
        ).run(tour=tour8)
        assert design.mapping.wl_budget == network8.size

    def test_pdn_mode_none_skips_pdn(self, network8, tour8):
        design = XRingSynthesizer(
            network8, SynthesisOptions(pdn_mode=None)
        ).run(tour=tour8)
        assert design.pdn is None
        assert design.report.stage("pdn").status == STATUS_OK


class TestCleanRunReport:
    def test_report_attached_and_clean(self, network8, tour8):
        design = XRingSynthesizer(network8, SynthesisOptions()).run(tour=tour8)
        report = design.report
        assert report is not None
        assert not report.degraded
        assert report.stage("ring").status == STATUS_PROVIDED
        for name in ("shortcuts", "mapping", "pdn", "validate"):
            assert report.stage(name).status == STATUS_OK
        assert report.total_elapsed_s > 0.0
        assert report.retries == 0

    def test_per_stage_elapsed_recorded(self, network8):
        design = XRingSynthesizer(network8, SynthesisOptions()).run()
        stages = {s.name: s for s in design.report.stages}
        assert stages["ring"].elapsed_s > 0.0
        assert sum(s.elapsed_s for s in stages.values()) <= (
            design.report.total_elapsed_s + 1e-6
        )


class TestDegradationChain:
    """Every injected failure ends in a valid design, on time."""

    def _run(self, network, fault_plan, **option_kwargs):
        options = SynthesisOptions(**option_kwargs)
        synthesizer = XRingSynthesizer(
            network, options, fault_plan=fault_plan
        )
        before = time.monotonic()
        design = synthesizer.run()
        wall_s = time.monotonic() - before
        assert fault_plan.exhausted, "a scripted fault never fired"
        assert validate_design(design) == []
        return design, wall_s

    def test_milp_stall_degrades_to_heuristic_ring(self, network8):
        # A solver stall eats the whole budget before Step 1; the chain
        # must deliver a validating design via the heuristic ring and
        # terminate without waiting out the (virtual) 1000 seconds.
        plan = FaultPlan().stall("ring", 1000.0)
        design, wall_s = self._run(network8, plan, deadline_s=30.0)
        record = design.report.stage("ring")
        assert record.status == STATUS_FALLBACK
        assert record.fallback == "heuristic_ring"
        assert "deadline" in record.error
        assert design.report.degraded
        assert wall_s < 30.0

    def test_ring_error_degrades_to_heuristic_ring(self, network8):
        plan = FaultPlan().error("ring", "solver crashed")
        design, _ = self._run(network8, plan)
        record = design.report.stage("ring")
        assert record.fallback == "heuristic_ring"
        assert "solver crashed" in record.error

    def test_ring_infeasible_degrades_to_heuristic_ring(self, network8):
        plan = FaultPlan().infeasible("ring")
        design, _ = self._run(network8, plan)
        assert design.report.stage("ring").fallback == "heuristic_ring"

    def test_shortcut_failure_degrades_to_no_shortcuts(self, network8):
        plan = FaultPlan().error("shortcuts")
        design, _ = self._run(network8, plan)
        assert design.report.stage("shortcuts").fallback == "no_shortcuts"
        assert design.shortcut_count == 0

    def test_mapping_failure_degrades_to_plain_ring(self, network8):
        plan = FaultPlan().error("mapping")
        design, _ = self._run(network8, plan)
        record = design.report.stage("mapping")
        assert record.status == STATUS_FALLBACK
        assert record.fallback == "plain_ring"
        assert design.shortcut_count == 0
        # Plain ring still serves every demand.
        assert len(design.mapping.assignments) == len(network8.demands())

    def test_pdn_failure_skips_pdn(self, network8):
        plan = FaultPlan().error("pdn")
        design, _ = self._run(network8, plan)
        assert design.report.stage("pdn").status == STATUS_SKIPPED
        assert design.pdn is None

    def test_multiple_faults_compound(self, network8):
        plan = FaultPlan().error("ring").error("shortcuts").error("pdn")
        design, _ = self._run(network8, plan)
        assert set(design.report.fallbacks) >= {
            "ring:heuristic_ring",
            "shortcuts:no_shortcuts",
            "pdn:no_pdn",
        }

    def test_exhausted_deadline_still_finishes(self, network8):
        # Budget gone before anything runs: every stage takes its
        # cheapest path, and the run still ends in a valid design.
        plan = FaultPlan().stall("ring", 10.0)
        design, wall_s = self._run(network8, plan, deadline_s=5.0)
        assert design.report.degraded
        assert wall_s < 5.0
        assert validate_design(design) == []


class TestRepairGates:
    def test_corrupted_tour_is_repaired(self, network8):
        plan = FaultPlan().corrupt("ring", "shift_position")
        design = XRingSynthesizer(
            network8, SynthesisOptions(), fault_plan=plan
        ).run()
        record = design.report.stage("ring")
        assert record.status == STATUS_REPAIRED
        assert design.report.retries == 1
        assert validate_design(design) == []

    def test_dropped_assignment_triggers_remap(self, network8):
        plan = FaultPlan().corrupt("mapping", "drop_assignment")
        design = XRingSynthesizer(
            network8, SynthesisOptions(), fault_plan=plan
        ).run()
        assert design.report.stage("mapping").status == STATUS_REPAIRED
        assert design.report.retries == 1
        assert validate_design(design) == []

    def test_wavelength_overflow_triggers_remap(self, network8):
        plan = FaultPlan().corrupt("mapping", "wavelength_overflow")
        design = XRingSynthesizer(
            network8, SynthesisOptions(), fault_plan=plan
        ).run()
        assert design.report.stage("mapping").status == STATUS_REPAIRED
        assert validate_design(design) == []

    def test_negative_gain_shortcut_caught_at_mapping_gate(self, network8):
        plan = FaultPlan().corrupt("shortcuts", "negative_gain")
        design = XRingSynthesizer(
            network8, SynthesisOptions(), fault_plan=plan
        ).run()
        assert design.report.retries >= 1
        assert validate_design(design) == []


class TestRaisePolicy:
    """``on_error="raise"`` restores fail-fast semantics."""

    def test_injected_ring_error_propagates(self, network8):
        plan = FaultPlan().error("ring", "solver crashed")
        synthesizer = XRingSynthesizer(
            network8, SynthesisOptions(on_error="raise"), fault_plan=plan
        )
        with pytest.raises(FaultInjected) as excinfo:
            synthesizer.run()
        assert excinfo.value.stage == "ring"

    def test_deadline_expiry_propagates(self, network8):
        plan = FaultPlan().stall("ring", 100.0)
        synthesizer = XRingSynthesizer(
            network8,
            SynthesisOptions(on_error="raise", deadline_s=10.0),
            fault_plan=plan,
        )
        with pytest.raises(DeadlineExceeded):
            synthesizer.run()

    def test_input_errors_never_degrade(self):
        from repro.geometry import Point
        from repro.network import Network

        # Duplicate positions break the heuristic fallback too, so the
        # degrade policy must not mask them.
        points = [Point(0, 0), Point(0, 0), Point(1, 1), Point(2, 0)]
        network = Network.from_positions(points)
        synthesizer = XRingSynthesizer(network, SynthesisOptions())
        with pytest.raises(InputError):
            synthesizer.run()


class TestProvenanceInRows:
    def test_degraded_flag_reaches_experiment_rows(self, network8, tour8):
        from repro.experiments.common import evaluate_design
        from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES

        plan = FaultPlan().error("shortcuts")
        design = XRingSynthesizer(
            network8, SynthesisOptions(), fault_plan=plan
        ).run(tour=tour8)
        row = evaluate_design(design, ORING_LOSSES, NIKDAST_CROSSTALK)
        assert row.degraded
        assert "shortcuts:no_shortcuts" in row.fallbacks

    def test_unknown_router_kind_is_typed(self):
        from repro.experiments.common import _router_options
        from repro.photonics import ORING_LOSSES

        with pytest.raises(ConfigurationError):
            _router_options("warpdrive", 8, ORING_LOSSES, True)
