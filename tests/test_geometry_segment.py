"""Unit tests for axis-aligned segments and intersection classification."""

import pytest

from repro.geometry import (
    IntersectionKind,
    Point,
    Segment,
    classify_intersection,
)


def seg(x1, y1, x2, y2) -> Segment:
    return Segment(Point(x1, y1), Point(x2, y2))


class TestSegmentConstruction:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            seg(1, 1, 1, 1)

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError):
            seg(0, 0, 1, 1)

    def test_orientation_flags(self):
        assert seg(0, 0, 5, 0).is_horizontal
        assert not seg(0, 0, 5, 0).is_vertical
        assert seg(2, 1, 2, 9).is_vertical

    def test_length(self):
        assert seg(0, 0, 5, 0).length == 5.0
        assert seg(1, -2, 1, 3).length == 5.0

    def test_lo_hi_fixed(self):
        s = seg(5, 2, 1, 2)
        assert (s.lo, s.hi, s.fixed) == (1.0, 5.0, 2.0)

    def test_contains_point(self):
        s = seg(0, 0, 4, 0)
        assert s.contains_point(Point(2, 0))
        assert s.contains_point(Point(0, 0))
        assert not s.contains_point(Point(2, 0.5))
        assert not s.contains_point(Point(5, 0))

    def test_reversed(self):
        s = seg(0, 0, 4, 0)
        assert s.reversed().a == Point(4, 0)


class TestPerpendicularClassification:
    def test_proper_cross(self):
        inter = classify_intersection(seg(0, 1, 4, 1), seg(2, 0, 2, 3))
        assert inter.kind is IntersectionKind.CROSS
        assert inter.point == Point(2, 1)

    def test_touch_at_segment_end(self):
        inter = classify_intersection(seg(0, 0, 4, 0), seg(4, 0, 4, 3))
        assert inter.kind is IntersectionKind.TOUCH
        assert inter.point == Point(4, 0)

    def test_t_junction_is_touch(self):
        inter = classify_intersection(seg(0, 0, 4, 0), seg(2, 0, 2, 3))
        assert inter.kind is IntersectionKind.TOUCH

    def test_disjoint(self):
        inter = classify_intersection(seg(0, 0, 4, 0), seg(5, 1, 5, 3))
        assert inter.kind is IntersectionKind.DISJOINT

    def test_order_independent(self):
        h, v = seg(0, 1, 4, 1), seg(2, 0, 2, 3)
        assert classify_intersection(h, v).kind == classify_intersection(v, h).kind


class TestParallelClassification:
    def test_collinear_overlap(self):
        inter = classify_intersection(seg(0, 0, 4, 0), seg(2, 0, 6, 0))
        assert inter.kind is IntersectionKind.OVERLAP
        assert inter.overlap == (Point(2, 0), Point(4, 0))

    def test_collinear_point_touch(self):
        inter = classify_intersection(seg(0, 0, 4, 0), seg(4, 0, 8, 0))
        assert inter.kind is IntersectionKind.TOUCH
        assert inter.point == Point(4, 0)

    def test_collinear_disjoint(self):
        inter = classify_intersection(seg(0, 0, 2, 0), seg(3, 0, 8, 0))
        assert inter.kind is IntersectionKind.DISJOINT

    def test_parallel_different_tracks(self):
        inter = classify_intersection(seg(0, 0, 4, 0), seg(0, 1, 4, 1))
        assert inter.kind is IntersectionKind.DISJOINT

    def test_vertical_overlap(self):
        inter = classify_intersection(seg(1, 0, 1, 5), seg(1, 3, 1, 9))
        assert inter.kind is IntersectionKind.OVERLAP

    def test_contained_overlap(self):
        inter = classify_intersection(seg(0, 0, 10, 0), seg(3, 0, 4, 0))
        assert inter.kind is IntersectionKind.OVERLAP
        assert inter.overlap == (Point(3, 0), Point(4, 0))
