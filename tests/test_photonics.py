"""Unit and property tests for units, parameters and device sizing."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.photonics import (
    DEFAULT_SIZES,
    NIKDAST_CROSSTALK,
    ORING_LOSSES,
    PROTON_LOSSES,
    ComponentSizes,
    db_to_linear,
    dbm_to_mw,
    laser_power_mw,
    linear_to_db,
    mw_to_dbm,
    ring_pair_spacing,
    snr_db,
)


class TestUnits:
    def test_db_linear_known_values(self):
        assert db_to_linear(0) == pytest.approx(1.0)
        assert db_to_linear(10) == pytest.approx(10.0)
        assert db_to_linear(-3.0103) == pytest.approx(0.5, rel=1e-4)

    def test_dbm_known_values(self):
        assert dbm_to_mw(0) == pytest.approx(1.0)
        assert dbm_to_mw(30) == pytest.approx(1000.0)

    @given(st.floats(min_value=-60, max_value=60, allow_nan=False))
    def test_roundtrip_db(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-60, max_value=60, allow_nan=False))
    def test_roundtrip_dbm(self, dbm):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            mw_to_dbm(-1.0)

    def test_laser_power_model(self):
        # il_w = 10 dB, S = -20 dBm -> launch -10 dBm = 0.1 mW.
        assert laser_power_mw(10.0, -20.0) == pytest.approx(0.1)

    def test_laser_power_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            laser_power_mw(-1.0, -20.0)

    @given(st.floats(min_value=0, max_value=40, allow_nan=False))
    def test_laser_power_monotone_in_loss(self, il):
        assert laser_power_mw(il + 1.0, -20.0) > laser_power_mw(il, -20.0)

    def test_snr(self):
        assert snr_db(1.0, 0.1) == pytest.approx(10.0)
        assert snr_db(1.0, 0.0) == math.inf

    def test_snr_validation(self):
        with pytest.raises(ValueError):
            snr_db(0.0, 1.0)
        with pytest.raises(ValueError):
            snr_db(1.0, -0.1)


class TestParameters:
    def test_propagation_scales_with_length(self):
        # 0.274 dB/cm -> 10 mm is 0.274 dB.
        assert PROTON_LOSSES.propagation(10.0) == pytest.approx(0.274)

    def test_propagation_rejects_negative(self):
        with pytest.raises(ValueError):
            PROTON_LOSSES.propagation(-1.0)

    def test_with_overrides(self):
        changed = ORING_LOSSES.with_overrides(crossing_db=1.0)
        assert changed.crossing_db == 1.0
        assert changed.drop_db == ORING_LOSSES.drop_db

    def test_crosstalk_coefficients_negative(self):
        assert NIKDAST_CROSSTALK.crossing_db < 0
        assert NIKDAST_CROSSTALK.mrr_through_leak_db < 0
        assert NIKDAST_CROSSTALK.mrr_drop_residual_db < 0

    def test_crosstalk_overrides(self):
        changed = NIKDAST_CROSSTALK.with_overrides(crossing_db=-35.0)
        assert changed.crossing_db == -35.0

    def test_named_sets_differ(self):
        assert PROTON_LOSSES.crossing_db != ORING_LOSSES.crossing_db


class TestDeviceSizing:
    def test_spacing_formula(self):
        # A1 + ceil(log2 N) * A2
        sizes = ComponentSizes(modulator_mm=0.05, splitter_mm=0.02)
        assert ring_pair_spacing(16, sizes) == pytest.approx(0.05 + 4 * 0.02)
        assert ring_pair_spacing(8, sizes) == pytest.approx(0.05 + 3 * 0.02)

    def test_spacing_non_power_of_two(self):
        assert ring_pair_spacing(9) > ring_pair_spacing(8)

    def test_spacing_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ring_pair_spacing(1)

    def test_sizes_must_be_positive(self):
        with pytest.raises(ValueError):
            ComponentSizes(modulator_mm=0.0)

    def test_default_sizes_sane(self):
        assert 0 < DEFAULT_SIZES.splitter_mm < DEFAULT_SIZES.modulator_mm
