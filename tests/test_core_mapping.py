"""Unit and property tests for Step 3: mapping, wavelengths, openings."""

import itertools

import pytest

from repro.core.mapping import Direction, map_signals
from repro.core.shortcuts import ShortcutPlan, select_shortcuts
from repro.network.traffic import all_to_all
from repro.photonics.parameters import ORING_LOSSES


def plain_mapping(tour, wl_budget, **kwargs):
    demands = all_to_all(tour.size)
    return map_signals(tour, demands, ShortcutPlan(), wl_budget, **kwargs)


class TestMappingInvariants:
    def test_all_demands_mapped(self, tour16):
        mapping = plain_mapping(tour16, 16)
        assert len(mapping.assignments) == 240

    def test_wavelengths_within_budget(self, tour16):
        budget = 10
        mapping = plain_mapping(tour16, budget)
        assert all(a.wavelength < budget for a in mapping.assignments.values())

    def test_no_same_wavelength_arc_overlap(self, tour16):
        mapping = plain_mapping(tour16, 12)
        by_slot = {}
        for a in mapping.assignments.values():
            by_slot.setdefault((a.rid, a.wavelength), []).append(a)
        for assignments in by_slot.values():
            for a, b in itertools.combinations(assignments, 2):
                assert not (a.edges & b.edges), (
                    f"{(a.src, a.dst)} and {(b.src, b.dst)} overlap on "
                    f"ring {a.rid} wavelength {a.wavelength}"
                )

    def test_shortest_direction(self, tour16):
        mapping = plain_mapping(tour16, 16)
        for (src, dst), a in mapping.assignments.items():
            cw = tour16.cw_distance(src, dst)
            ccw = tour16.ccw_distance(src, dst)
            expected = Direction.CW if cw <= ccw else Direction.CCW
            assert a.direction is expected

    def test_openings_not_traversed(self, tour16):
        mapping = plain_mapping(tour16, 16, open_rings=True)
        ring_by_id = {r.rid: r for r in mapping.rings}
        for a in mapping.assignments.values():
            opening = ring_by_id[a.rid].opening_node
            assert opening is not None
            assert opening not in a.passed_nodes

    def test_closed_rings_have_no_openings(self, tour16):
        mapping = plain_mapping(tour16, 16, open_rings=False)
        assert all(r.opening_node is None for r in mapping.rings)

    def test_no_empty_rings(self, tour16):
        mapping = plain_mapping(tour16, 16)
        for ring in mapping.rings:
            assert mapping.ring_signals(ring.rid)

    def test_rids_renumbered_contiguously(self, tour16):
        mapping = plain_mapping(tour16, 16)
        assert [r.rid for r in mapping.rings] == list(range(len(mapping.rings)))

    def test_smaller_budget_needs_more_rings(self, tour16):
        small = plain_mapping(tour16, 4)
        large = plain_mapping(tour16, 16)
        assert len(small.rings) >= len(large.rings)

    def test_budget_validation(self, tour16):
        with pytest.raises(ValueError):
            plain_mapping(tour16, 0)

    def test_order_validation(self, tour16):
        with pytest.raises(ValueError):
            plain_mapping(tour16, 8, order="bogus")
        with pytest.raises(ValueError):
            plain_mapping(tour16, 8, direction_policy="bogus")


class TestFirstFitPolicy:
    def test_first_fit_maps_everything(self, tour16):
        mapping = plain_mapping(
            tour16, 16, order="demand", direction_policy="first_fit"
        )
        assert len(mapping.assignments) == 240

    def test_first_fit_takes_longer_paths(self, tour16):
        shortest = plain_mapping(tour16, 16)
        first_fit = plain_mapping(
            tour16, 16, order="demand", direction_policy="first_fit"
        )

        def total_length(mapping):
            total = 0.0
            for (src, dst), a in mapping.assignments.items():
                dist = (
                    tour16.cw_distance(src, dst)
                    if a.direction is Direction.CW
                    else tour16.ccw_distance(src, dst)
                )
                total += dist
            return total

        assert total_length(first_fit) > total_length(shortest)

    def test_first_fit_respects_budget_and_overlap(self, tour16):
        mapping = plain_mapping(
            tour16, 16, order="demand", direction_policy="first_fit",
            open_rings=False,
        )
        by_slot = {}
        for a in mapping.assignments.values():
            assert a.wavelength < 16
            by_slot.setdefault((a.rid, a.wavelength), []).append(a)
        for assignments in by_slot.values():
            for a, b in itertools.combinations(assignments, 2):
                assert not (a.edges & b.edges)


class TestShortcutWavelengths:
    def test_shortcut_signals_excluded_from_rings(self, tour16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        mapping = map_signals(tour16, all_to_all(16), plan, 16)
        for pair in plan.served:
            assert pair not in mapping.assignments
            assert pair in mapping.shortcut_wavelengths

    def test_plain_shortcuts_use_wavelength_zero(self, tour16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        mapping = map_signals(tour16, all_to_all(16), plan, 16)
        for idx, s in enumerate(plan.shortcuts):
            if s.partner is None:
                assert mapping.shortcut_wavelengths[(s.node_a, s.node_b)] == 0

    def test_crossed_shortcuts_use_distinct_wavelengths(self, tour8):
        plan = select_shortcuts(tour8)  # length-gain mode allows crossings
        mapping = map_signals(tour8, all_to_all(8), plan, 8)
        for idx1, idx2 in plan.crossing_pairs:
            s1, s2 = plan.shortcuts[idx1], plan.shortcuts[idx2]
            wl1 = mapping.shortcut_wavelengths[(s1.node_a, s1.node_b)]
            wl2 = mapping.shortcut_wavelengths[(s2.node_a, s2.node_b)]
            assert wl1 != wl2
