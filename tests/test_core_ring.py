"""Unit and property tests for Step 1: ring construction."""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ring import RingTour, construct_ring_tour
from repro.geometry import Point, count_crossings, paths_cross


def tour_is_valid(tour: RingTour, points) -> None:
    assert sorted(tour.order) == list(range(len(points)))
    assert tour.length_mm == pytest.approx(
        sum(path.length for path in tour.edge_paths)
    )
    # Every edge path connects consecutive tour nodes.
    n = len(points)
    for k, path in enumerate(tour.edge_paths):
        assert path.start.almost_equals(points[tour.order[k]])
        assert path.end.almost_equals(points[tour.order[(k + 1) % n]])


class TestConstructRingTour:
    def test_square(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        tour = construct_ring_tour(points)
        tour_is_valid(tour, points)
        assert tour.length_mm == pytest.approx(8.0)
        assert tour.crossing_count == 0

    def test_rectangle_grid_8(self, network8, tour8):
        tour_is_valid(tour8, list(network8.positions))
        assert tour8.crossing_count == 0

    def test_16_node(self, network16, tour16):
        tour_is_valid(tour16, list(network16.positions))
        assert tour16.crossing_count == 0

    def test_edge_paths_pairwise_crossing_free(self, tour16):
        n = tour16.size
        for i, j in itertools.combinations(range(n), 2):
            shared = [
                p
                for p in tour16.edge_paths[i].points[:1] + tour16.edge_paths[i].points[-1:]
                if p.almost_equals(tour16.edge_paths[j].start)
                or p.almost_equals(tour16.edge_paths[j].end)
            ]
            assert count_crossings(
                tour16.edge_paths[i], tour16.edge_paths[j], ignore=shared
            ) == 0

    def test_distances(self, tour8):
        a, b = tour8.order[0], tour8.order[3]
        cw = tour8.cw_distance(a, b)
        ccw = tour8.ccw_distance(a, b)
        assert cw + ccw == pytest.approx(tour8.length_mm)
        assert tour8.cw_distance(a, a) == 0.0

    def test_nodes_strictly_between(self, tour8):
        order = tour8.order
        between = tour8.nodes_strictly_between(order[0], order[3])
        assert between == list(order[1:3])
        assert tour8.nodes_strictly_between(order[0], order[1]) == []

    def test_successor(self, tour8):
        assert tour8.successor(tour8.order[0]) == tour8.order[1]
        assert tour8.successor(tour8.order[-1]) == tour8.order[0]

    def test_position_of_point(self, tour8):
        start = tour8.points[tour8.order[0]]
        assert tour8.position_of_point(start) == pytest.approx(0.0)
        off_ring = Point(-99.0, -99.0)
        assert tour8.position_of_point(off_ring) is None

    def test_rejects_tiny_networks(self):
        with pytest.raises(ValueError):
            construct_ring_tour([Point(0, 0), Point(1, 0)])

    def test_rejects_duplicate_positions(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 0), Point(1, 1)]
        with pytest.raises(ValueError):
            construct_ring_tour(points)

    def test_branch_bound_backend_small(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        tour = construct_ring_tour(points, backend="branch_bound")
        assert tour.length_mm == pytest.approx(8.0)

    def test_collinear_nodes_not_skipped_through(self):
        # Nodes on one row plus one off-row: the ring cannot run a
        # waveguide through a foreign node's position.
        points = [Point(0, 0), Point(2, 0), Point(4, 0), Point(2, 2)]
        tour = construct_ring_tour(points)
        tour_is_valid(tour, points)
        assert tour.crossing_count == 0


@st.composite
def point_sets(draw):
    n = draw(st.integers(4, 6))
    coords = st.integers(0, 7)
    points = []
    seen = set()
    while len(points) < n:
        x, y = draw(coords), draw(coords)
        if (x, y) not in seen:
            seen.add((x, y))
            points.append(Point(float(x), float(y)))
    # All-collinear sets admit no crossing-free closed ring (the MILP
    # is honestly infeasible there); the property under test assumes a
    # feasible instance, so nudge the last point off the shared line.
    xs = {p.x for p in points}
    ys = {p.y for p in points}
    if len(xs) == 1 or len(ys) == 1:
        offset = 1.0 if len(xs) == 1 else 0.0
        replacement = Point(points[-1].x + offset, points[-1].y + (1.0 - offset))
        points[-1] = replacement
    return points


class TestRingTourProperties:
    @given(point_sets())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.large_base_example],
    )
    def test_random_point_sets(self, points):
        tour = construct_ring_tour(points)
        tour_is_valid(tour, points)
        # The realization stages should almost always succeed; when
        # they cannot, the residual count must be reported, never
        # silently wrong.
        assert tour.crossing_count >= 0
        # Lower bound: a tour is at least the largest pairwise distance
        # times 2 (go and come back).
        worst = max(a.manhattan(b) for a, b in itertools.combinations(points, 2))
        assert tour.length_mm >= 2 * worst - 1e-6
