"""Multi-process failover suite for the sharded L2 cache.

Real ``xring cache-node`` subprocesses, real SIGKILL.  The scenarios
the shard layer exists for:

- a dead node mid-fleet never fails or hangs a batch: reads fail over
  to the replica (``cache.l2.failovers``), the per-node breaker opens,
  and ``stats()`` reports the degraded node;
- every node dead degrades to recompute — identical results, zero
  wrong answers;
- a node rejoining empty is restocked by the anti-entropy scrub
  (keyspace handoff), after which it serves its keys again.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.synthesizer import SynthesisOptions
from repro.parallel import (
    BatchCase,
    BatchSynthesizer,
    ShardClient,
    case_key,
    clear_caches,
    get_cache,
    result_digest,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


class NodeProc:
    """One ``xring cache-node`` subprocess (killable, restartable)."""

    def __init__(self, directory: Path, port: int = 0):
        self.directory = directory
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cache-node",
                "--dir",
                str(directory),
                "--port",
                str(port),
            ],
            env={**os.environ, "PYTHONPATH": REPO_SRC},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        address_file = directory / "address"
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if address_file.exists():
                self.address = address_file.read_text().strip()
                return
            if self.proc.poll() is not None:
                break
            time.sleep(0.05)
        raise RuntimeError("cache node never published its address")

    @property
    def port(self) -> int:
        return int(self.address.rsplit(":", 1)[1])

    def kill(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait()

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            self.proc.wait()


@pytest.fixture
def two_nodes(tmp_path):
    nodes = [NodeProc(tmp_path / f"node{i}") for i in range(2)]
    clear_caches()
    yield nodes
    clear_caches()
    for node in nodes:
        node.kill()


def _cases(network8, network16):
    return [
        BatchCase(
            network=network,
            options=SynthesisOptions(ring_method="heuristic", label=label),
            label=label,
        )
        for label, network in (("a", network8), ("b", network16))
    ]


def _client(nodes):
    client = ShardClient([n.address for n in nodes], replication=2)
    get_cache().attach_l2(client)
    return client


class TestShardFailover:
    def test_dead_node_fails_over_and_batch_completes(
        self, two_nodes, network8, network16
    ):
        cases = _cases(network8, network16)
        client = _client(two_nodes)
        warm = BatchSynthesizer(workers=1).run(cases)
        assert warm.ok
        digests = [result_digest(r) for r in warm.results]
        assert client.counters["puts:results"] == len(cases)

        # SIGKILL the node that is *primary* for case 0's entry, so at
        # least one read must fail over to the replica.
        key0 = case_key(0, cases[0])
        primary = client.ring.owners(key0, 1)[0]
        victim = next(n for n in two_nodes if n.address == primary)
        victim.kill()

        clear_caches()
        client = _client(two_nodes)  # fresh breakers, same ring
        report = BatchSynthesizer(workers=1).run(cases)
        assert report.ok
        assert [result_digest(r) for r in report.results] == digests
        # Served entirely from the surviving replica — no recompute,
        # no hang, and the failover is visible in the merged metrics.
        assert all(r.cached for r in report.results)
        counters = report.metrics.snapshot()["counters"]
        assert counters["cache.l2.hits"] == len(cases)
        assert counters["cache.l2.failovers"] >= 1

        # Two more reads against the dead primary latch its breaker;
        # stats() then reports the degraded node.
        client.get("results", key0)
        client.get("results", key0)
        stats = client.stats()
        assert stats["nodes"][victim.address]["breaker_open"]
        assert stats["nodes"][victim.address]["failures"] >= 1
        assert client.counters["breaker_opens"] >= 1
        live = next(n for n in two_nodes if n is not victim)
        assert not stats["nodes"][live.address]["breaker_open"]

    def test_all_nodes_dead_degrades_to_recompute(
        self, two_nodes, network8, network16
    ):
        cases = _cases(network8, network16)
        client = _client(two_nodes)
        warm = BatchSynthesizer(workers=1).run(cases)
        digests = [result_digest(r) for r in warm.results]
        for node in two_nodes:
            node.kill()

        clear_caches()
        _client(two_nodes)
        report = BatchSynthesizer(workers=1).run(cases)
        # Nothing served, nothing wrong: the batch recomputes every
        # case and still finishes with identical results.
        assert report.ok
        assert not any(r.cached for r in report.results)
        assert [result_digest(r) for r in report.results] == digests

    def test_rejoin_handoff_restocks_empty_node(
        self, two_nodes, tmp_path, network8, network16
    ):
        cases = _cases(network8, network16)
        client = _client(two_nodes)
        assert BatchSynthesizer(workers=1).run(cases).ok

        victim = two_nodes[0]
        port = victim.port
        victim.kill()
        # Rejoin on the same address with a *fresh, empty* store.
        rejoined = NodeProc(tmp_path / "node0b", port=port)
        two_nodes[0] = rejoined

        report = client.scrub(repair=True)
        assert report["dead_nodes"] == []
        assert report["repaired"] >= 1
        # Handoff complete: the rejoined node now holds every entry it
        # owns, and a follow-up scrub finds nothing to repair.
        keys = client.node_json(rejoined.address, "GET", "/keys")["keys"]
        held = {
            key
            for section in keys.values()
            for key in section
        }
        for idx, case in enumerate(cases):
            key = case_key(idx, case)
            if rejoined.address in client.ring.owners(key, 2):
                assert key in held
        assert client.scrub(repair=True)["under_replicated"] == 0
