"""Tests for the ORNoC and ORing ring-router baselines."""

import pytest

from repro.analysis import evaluate_circuit
from repro.baselines.ring import synthesize_ornoc, synthesize_oring
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES


@pytest.fixture(scope="module")
def baseline_designs(network16, tour16):
    ornoc = synthesize_ornoc(network16, wl_budget=16, tour=tour16)
    oring = synthesize_oring(network16, wl_budget=16, tour=tour16)
    return ornoc, oring


@pytest.fixture(scope="module")
def baseline_evaluations(baseline_designs):
    return tuple(
        evaluate_circuit(
            d.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK),
            ORING_LOSSES,
            NIKDAST_CROSSTALK,
        )
        for d in baseline_designs
    )


class TestBaselineStructure:
    def test_no_shortcuts(self, baseline_designs):
        for design in baseline_designs:
            assert design.shortcut_count == 0

    def test_closed_rings(self, baseline_designs):
        for design in baseline_designs:
            assert all(r.opening_node is None for r in design.mapping.rings)

    def test_external_pdn_has_crossings(self, baseline_designs):
        for design in baseline_designs:
            assert design.pdn is not None
            assert design.pdn.crossing_count > 0

    def test_labels(self, baseline_designs):
        assert baseline_designs[0].label == "ornoc"
        assert baseline_designs[1].label == "oring"

    def test_all_demands_mapped(self, baseline_designs):
        for design in baseline_designs:
            assert len(design.mapping.assignments) == 240

    def test_no_pdn_variant(self, network16, tour16):
        design = synthesize_ornoc(network16, wl_budget=16, tour=tour16, pdn=False)
        assert design.pdn is None


class TestBaselineBehaviour:
    def test_baselines_suffer_noise(self, baseline_evaluations):
        for evaluation in baseline_evaluations:
            assert evaluation.noisy_signals > 0.5 * evaluation.signal_count
            assert evaluation.snr_worst_db is not None

    def test_ornoc_paths_longer_than_oring(self, baseline_evaluations):
        ornoc, oring = baseline_evaluations
        # ORNoC's first-fit sends signals the long way around.
        assert ornoc.worst_length_mm > oring.worst_length_mm

    def test_worst_paths_cross_pdn(self, baseline_evaluations):
        for evaluation in baseline_evaluations:
            assert evaluation.worst_crossings >= 0
        assert any(e.worst_crossings > 0 for e in baseline_evaluations)


class TestXRingBeatsBaselines:
    """The paper's headline comparisons, as regression tests."""

    @pytest.fixture(scope="class")
    def xring_evaluation(self, network16, tour16):
        from repro.core import SynthesisOptions, XRingSynthesizer

        design = XRingSynthesizer(
            network16, SynthesisOptions(wl_budget=16)
        ).run(tour=tour16)
        return evaluate_circuit(
            design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK),
            ORING_LOSSES,
            NIKDAST_CROSSTALK,
        )

    def test_xring_lower_insertion_loss(self, xring_evaluation, baseline_evaluations):
        for baseline in baseline_evaluations:
            assert xring_evaluation.il_w < baseline.il_w

    def test_xring_lower_power(self, xring_evaluation, baseline_evaluations):
        for baseline in baseline_evaluations:
            assert xring_evaluation.power_w < baseline.power_w

    def test_xring_noise_free_fraction(self, xring_evaluation, baseline_evaluations):
        assert xring_evaluation.noise_free_fraction > 0.98
        for baseline in baseline_evaluations:
            assert baseline.noise_free_fraction < 0.5

    def test_xring_zero_crossings_on_worst_path(self, xring_evaluation):
        assert xring_evaluation.worst_crossings == 0
