"""Burn-rate SLOs and the alert state machine (repro.obs.slo).

The math pin: burn = bad_fraction / error_budget, an alert fires only
when *every* window burns past its threshold (multi-window burn-rate
alerting — the short window gives speed, the long one immunity to
blips), and a firing alert clears only after ``clear_after_s`` of
consecutive healthy scrapes (hysteresis — no flapping).
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    SLO,
    AlertEngine,
    MetricsRegistry,
    TimeSeriesStore,
    default_service_slos,
    file_sink,
)


def _feed(store, t, done=0, failed=0, latencies=()):
    """One synthetic scrape with cumulative counters."""
    reg = MetricsRegistry()
    reg.counter("service.jobs.done").inc(done)
    reg.counter("service.jobs.failed").inc(failed)
    hist = reg.histogram("service.job_latency_s", (0.1, 1.0, 10.0))
    for value in latencies:
        hist.observe(value)
    store.observe(reg.snapshot(), now=t)


def _availability(objective=0.9, windows=((10.0, 2.0),), **kw):
    return SLO(
        name="avail",
        kind="ratio",
        objective=objective,
        bad="service.jobs.failed",
        total=("service.jobs.done", "service.jobs.failed"),
        windows=windows,
        clear_after_s=kw.pop("clear_after_s", 5.0),
        **kw,
    )


class TestSLOValidation:
    def test_ratio_needs_total_and_one_side(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="ratio", total="t")  # neither good nor bad
        with pytest.raises(ValueError):
            SLO(name="x", kind="ratio", good="g", bad="b", total="t")

    def test_latency_needs_histogram(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="latency")

    def test_objective_must_leave_budget(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="ratio", bad="b", total="t", objective=1.0)

    def test_error_budget(self):
        assert _availability(objective=0.9).error_budget == pytest.approx(0.1)


class TestBurnMath:
    def test_burn_is_bad_fraction_over_budget(self):
        store = TimeSeriesStore()
        _feed(store, 0.0)
        _feed(store, 5.0, done=8, failed=2)
        burn = _availability(objective=0.9).window_burn(store, 10.0, now=5.0)
        assert burn["data"] is True
        assert burn["events"] == 10
        assert burn["bad_fraction"] == pytest.approx(0.2)
        assert burn["burn"] == pytest.approx(2.0)  # 0.2 / 0.1 budget

    def test_no_events_is_no_data(self):
        store = TimeSeriesStore()
        _feed(store, 0.0)
        burn = _availability().window_burn(store, 10.0, now=0.0)
        assert burn["data"] is False and burn["burn"] == 0.0

    def test_min_events_guard(self):
        store = TimeSeriesStore()
        _feed(store, 0.0)
        _feed(store, 1.0, done=1, failed=1)
        slo = _availability(min_events=10)
        assert slo.window_burn(store, 10.0, now=1.0)["data"] is False

    def test_latency_slo_reduces_to_good_fraction(self):
        store = TimeSeriesStore()
        _feed(store, 0.0)
        _feed(store, 5.0, latencies=[0.05] * 9 + [5.0])
        slo = SLO(
            name="p99",
            kind="latency",
            objective=0.5,
            histogram="service.job_latency_s",
            threshold_s=1.0,
            windows=((10.0, 0.1),),
        )
        burn = slo.window_burn(store, 10.0, now=5.0)
        assert burn["events"] == 10
        assert burn["bad_fraction"] == pytest.approx(0.1)
        assert burn["burn"] == pytest.approx(0.2)  # 0.1 / 0.5 budget

    def test_breach_requires_every_window(self):
        store = TimeSeriesStore()
        _feed(store, 0.0)
        for t in range(1, 30):
            _feed(store, float(t), done=0, failed=t)  # 100% failure
        slo = _availability(windows=((60.0, 2.0), (5.0, 2.0)))
        result = slo.evaluate(store, now=29.0)
        assert result["breach"] is True
        assert all(w["burning"] for w in result["windows"])


class TestAlertEngine:
    def test_fire_then_hysteresis_clear(self):
        store = TimeSeriesStore()
        slo = _availability(windows=((5.0, 2.0),), clear_after_s=3.0)
        engine = AlertEngine(store, [slo])
        _feed(store, 0.0, done=100)
        assert engine.evaluate(now=0.0) == []
        # Failure burst: burn = 1.0/0.1 = 10 >= 2 -> fires once.
        _feed(store, 1.0, done=100, failed=50)
        events = engine.evaluate(now=1.0)
        assert [e["event"] for e in events] == ["alert_firing"]
        assert engine.evaluate(now=2.0) == []  # still firing, no re-fire
        assert engine.active()[0]["alert"] == "avail"
        # Recovery: the failure counter stops moving; the 5s window
        # drains.  Healthy ticks accumulate only after burn < 1.0.
        for t in (7.0, 8.0, 9.0):
            _feed(store, t, done=200, failed=50)
            engine.evaluate(now=t)
        _feed(store, 10.5, done=200, failed=50)
        events = engine.evaluate(now=10.5)
        assert [e["event"] for e in events] == ["alert_resolved"]
        assert events[0]["fired_for_s"] == pytest.approx(9.5)
        assert engine.active() == []

    def test_unhealthy_tick_resets_the_clear_clock(self):
        store = TimeSeriesStore()
        slo = _availability(windows=((5.0, 2.0),), clear_after_s=4.0)
        engine = AlertEngine(store, [slo])
        _feed(store, 0.0, done=10)
        engine.evaluate(now=0.0)
        _feed(store, 1.0, done=10, failed=10)
        assert engine.evaluate(now=1.0)  # fires
        # Healthy at t=8, unhealthy again at t=9 (fresh failures):
        # the t=8 health credit must not count toward clearing.
        _feed(store, 8.0, done=30, failed=10)
        engine.evaluate(now=8.0)
        _feed(store, 9.0, done=30, failed=25)
        engine.evaluate(now=9.0)
        # The t=9 failures stay inside the 5s window until t > 14, so
        # health only starts accumulating at t=15; had the t=8 credit
        # survived, the alert would clear by t=12.
        for t in (15.0, 16.0, 17.0, 18.5):
            _feed(store, t, done=60, failed=25)
            assert engine.evaluate(now=t) == []
        _feed(store, 19.5, done=60, failed=25)
        assert [e["event"] for e in engine.evaluate(now=19.5)] == [
            "alert_resolved"
        ]

    def test_file_sink_appends_jsonl(self, tmp_path):
        store = TimeSeriesStore()
        path = tmp_path / "alerts" / "log.jsonl"
        slo = _availability(windows=((5.0, 2.0),))
        engine = AlertEngine(store, [slo], sinks=[file_sink(path)])
        _feed(store, 0.0, done=10)
        engine.evaluate(now=0.0)
        _feed(store, 1.0, done=10, failed=10)
        engine.evaluate(now=1.0)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["event"] == "alert_firing"
        assert lines[0]["alert"] == "avail"

    def test_broken_sink_never_breaks_evaluation(self):
        store = TimeSeriesStore()

        def boom(event):
            raise RuntimeError("sink down")

        engine = AlertEngine(store, [_availability(windows=((5.0, 2.0),))],
                             sinks=[boom])
        _feed(store, 0.0, done=10)
        engine.evaluate(now=0.0)
        _feed(store, 1.0, done=10, failed=10)
        events = engine.evaluate(now=1.0)  # no raise
        assert events and engine.recent()[0]["event"] == "alert_firing"


class TestDefaultServiceSLOs:
    def test_core_slos_present(self):
        slos = {s.name for s in default_service_slos()}
        assert "service-availability" in slos
        assert "service-job-p99-latency" in slos

    def test_zero_objective_disables_optional_slos(self):
        names = {s.name for s in default_service_slos()}
        assert not any("dedup" in n or "l2" in n for n in names)
        more = {
            s.name
            for s in default_service_slos(
                dedup_objective=0.5, l2_failover_objective=0.99
            )
        }
        assert "service-dedup-hit-rate" in more
        assert "cache-l2-failover-rate" in more

    def test_windows_derived_from_short_window(self):
        slos = default_service_slos(window_s=10.0, burn_threshold=3.0)
        avail = next(s for s in slos if s.name == "service-availability")
        assert avail.windows == ((60.0, 3.0), (10.0, 3.0))
