"""Unit and property tests for points and Manhattan metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, manhattan

coords = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPointBasics:
    def test_manhattan_simple(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7.0

    def test_manhattan_module_alias(self):
        assert manhattan(Point(1, 1), Point(2, 3)) == 3.0

    def test_euclidean(self):
        assert Point(0, 0).euclidean(Point(3, 4)) == pytest.approx(5.0)

    def test_translate(self):
        assert Point(1, 2).translate(2, -1) == Point(3, 1)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_almost_equals_tolerance(self):
        assert Point(0, 0).almost_equals(Point(1e-12, -1e-12))
        assert not Point(0, 0).almost_equals(Point(1e-3, 0))

    def test_as_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert tuple(p) == (1.5, 2.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1  # type: ignore[misc]

    def test_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2


class TestManhattanProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert a.manhattan(b) == pytest.approx(b.manhattan(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-9

    @given(points)
    def test_identity(self, a):
        assert a.manhattan(a) == 0.0

    @given(points, points)
    def test_dominates_euclidean(self, a, b):
        assert a.manhattan(b) >= a.euclidean(b) - 1e-9

    @given(points, points)
    def test_midpoint_halves_distance(self, a, b):
        mid = a.midpoint(b)
        assert a.manhattan(mid) == pytest.approx(b.manhattan(mid), abs=1e-6)
