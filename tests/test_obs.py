"""Tests for the observability layer (repro.obs) and its wiring.

Covers the tracer (nesting, thread-safety, Chrome export round-trip),
the metrics registry (bucket edges, overflow-free counter merges), the
ambient context, run artifacts, logging setup, the synthesizer
integration (span tree over all four stages, solver counters in the
report), and the null-tracer overhead regression bound.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time

import pytest

from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
from repro.network import Network
from repro.network.placement import psion_placement
from repro.obs import (
    DEFAULT_BUCKETS,
    LOG_LEVELS,
    NULL_METRICS,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    ObsContext,
    RunArtifacts,
    Tracer,
    configure_logging,
    get_logger,
    get_obs,
    use_obs,
    walk_tree,
)


def _network(num_nodes: int = 8) -> Network:
    points, die = psion_placement(num_nodes)
    return Network.from_positions(points, die=die)


# -- tracer ------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == root.span_id
        ids = [s.span_id for s in tracer.finished_spans()]
        assert len(ids) == len(set(ids)) == 4

    def test_walk_tree_depths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        depths = {span.name: depth for depth, span in walk_tree(tracer.finished_spans())}
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_span_measures_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            time.sleep(0.01)
            span.set_attribute("result", "ok")
        assert span.duration_s >= 0.01
        assert span.attributes == {"size": 3, "result": "ok"}

    def test_exception_is_recorded_and_span_closed(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert "nope" in span.attributes["error"]
        assert span.end_s is not None

    def test_thread_safety_independent_subtrees(self):
        tracer = Tracer()
        errors: list[Exception] = []

        def worker(tag: str) -> None:
            try:
                for _ in range(50):
                    with tracer.span(f"outer-{tag}") as outer:
                        with tracer.span(f"inner-{tag}") as inner:
                            assert inner.parent_id == outer.span_id
                        assert outer.parent_id is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(str(i),)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.finished_spans()
        assert len(spans) == 4 * 50 * 2
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        # Each inner span's parent lives on the same thread.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].thread_id == span.thread_id

    def test_chrome_export_round_trip(self):
        tracer = Tracer()
        with tracer.span("stage", k=1):
            with tracer.span("sub"):
                pass
        payload = json.loads(json.dumps(tracer.to_chrome()))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert [e["name"] for e in events] == ["sub", "stage"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        stage = events[1]
        assert stage["args"]["k"] == 1
        assert events[0]["args"]["parent_id"] == stage["args"]["span_id"]

    def test_jsonl_export_one_object_per_line(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = tracer.to_jsonl().strip().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_null_tracer_is_cheap_but_times(self):
        span_cm = NULL_TRACER.span("anything", attr=1)
        with span_cm as span:
            time.sleep(0.005)
        assert span.duration_s >= 0.005
        assert NULL_TRACER.finished_spans() == []
        assert NULL_TRACER.to_chrome() == {"traceEvents": [], "displayTimeUnit": "ms"}
        assert not NullTracer.enabled


# -- metrics -----------------------------------------------------------------
class TestMetrics:
    def test_histogram_bucket_edges(self):
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 4.0, 10.0, 11.0, 1e9):
            hist.observe(value)
        # value <= edge lands in that bucket; beyond the last edge is
        # the implicit overflow bucket.
        assert hist.counts == [2, 1, 1, 2]
        assert hist.total == 6
        assert hist.min == 0.5 and hist.max == 1e9
        data = hist.to_dict()
        assert data["buckets"] == [1.0, 5.0, 10.0]
        assert data["p50"] <= data["p90"] <= data["p99"]

    def test_histogram_percentiles_bounded_by_observations(self):
        hist = Histogram("h", buckets=DEFAULT_BUCKETS)
        for value in (3, 3, 4, 7, 9):
            hist.observe(value)
        for q in (0, 25, 50, 90, 99, 100):
            assert 3 <= hist.percentile(q) <= 9
        assert math.isnan(Histogram("empty").percentile(50))

    def test_counter_merge_is_overflow_free(self):
        # Values far beyond 64-bit range must merge exactly.
        big = 2**70
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(big)
        b.counter("n").inc(big)
        b.counter("n").inc(3)
        a.merge(b)
        assert a.counter("n").value == 2 * big + 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        a.merge(b)
        assert a.gauge("g").value == 2.0  # last write wins
        assert a.histogram("h").counts == [1, 1, 0]
        assert a.histogram("h").total == 2

    def test_merge_mismatched_buckets_keeps_totals(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(10.0, 20.0)).observe(12.0)
        b.histogram("h").observe(18.0)
        a.merge(b)
        assert a.histogram("h").total == 3

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["total"] == 1
        json.loads(reg.to_json())  # valid JSON

    def test_null_metrics_ignores_everything(self):
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert not NULL_METRICS.enabled


# -- ambient context ---------------------------------------------------------
class TestContext:
    def test_default_is_null(self):
        ctx = get_obs()
        assert not ctx.tracer.enabled
        assert not ctx.metrics.enabled

    def test_use_obs_nests_and_restores(self):
        outer = ObsContext(tracer=Tracer(), metrics=MetricsRegistry())
        inner = ObsContext(tracer=Tracer(), metrics=MetricsRegistry())
        with use_obs(outer):
            assert get_obs() is outer
            with use_obs(inner):
                assert get_obs() is inner
            assert get_obs() is outer
        assert not get_obs().tracer.enabled


# -- artifacts + logging -----------------------------------------------------
class TestArtifactsAndLogging:
    def test_run_artifacts_writes_bundle(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        reg = MetricsRegistry()
        reg.counter("c").inc()
        paths = RunArtifacts(tmp_path / "run").write(tracer=tracer, metrics=reg)
        names = sorted(p.name for p in paths)
        assert names == ["metrics.json", "metrics.om", "trace.json", "trace.jsonl"]
        chrome = json.loads((tmp_path / "run" / "trace.json").read_text())
        assert chrome["traceEvents"][0]["name"] == "x"
        metrics = json.loads((tmp_path / "run" / "metrics.json").read_text())
        assert metrics["counters"] == {"c": 1}
        exposition = (tmp_path / "run" / "metrics.om").read_text()
        assert "xring_c_total 1" in exposition
        assert exposition.endswith("# EOF\n")

    def test_run_artifacts_writes_report(self, tmp_path):
        design = XRingSynthesizer(_network(), SynthesisOptions()).run()
        (path,) = RunArtifacts(tmp_path).write(report=design.report)
        payload = json.loads(path.read_text())
        assert [s["name"] for s in payload["stages"]] == [
            "ring", "shortcuts", "mapping", "pdn", "validate",
        ]
        assert "metrics" in payload and "stage_elapsed_s" in payload

    def test_configure_logging_idempotent_and_validating(self):
        root = configure_logging("INFO")
        handlers = list(root.handlers)
        assert configure_logging("DEBUG").handlers == handlers
        assert root.level == logging.DEBUG
        with pytest.raises(ValueError):
            configure_logging("NOISY")
        assert "WARNING" in LOG_LEVELS
        configure_logging("WARNING")

    def test_get_logger_hierarchy(self):
        assert get_logger("synthesizer").name == "repro.synthesizer"


# -- synthesizer integration -------------------------------------------------
class TestSynthesizerIntegration:
    def test_span_tree_covers_all_four_stages(self):
        tracer = Tracer()
        design = XRingSynthesizer(
            _network(), SynthesisOptions(), tracer=tracer
        ).run()
        spans = tracer.finished_spans()
        names = {s.name for s in spans}
        assert {
            "synthesize",
            "stage.ring",
            "stage.shortcuts",
            "stage.mapping",
            "stage.pdn",
            "stage.validate",
        } <= names
        root = next(s for s in spans if s.name == "synthesize")
        stage_spans = [s for s in spans if s.name.startswith("stage.")]
        assert all(s.parent_id == root.span_id for s in stage_spans)
        assert design.synthesis_time_s == pytest.approx(root.duration_s)
        # Stage records reference their spans.
        by_id = {s.span_id: s for s in spans}
        for record in design.report.stages:
            assert by_id[record.span_id].name == f"stage.{record.name}"

    def test_report_carries_solver_counters(self):
        design = XRingSynthesizer(
            _network(), SynthesisOptions(milp_backend="branch_bound")
        ).run()
        report = design.report
        assert report.counter("milp.simplex.pivots") > 0
        assert report.counter("milp.bb.nodes") > 0
        assert report.metrics["gauges"]["deadline.ring.elapsed_s"] > 0
        assert set(report.stage_elapsed_s) == {
            "ring", "shortcuts", "mapping", "pdn", "validate",
        }

    def test_per_run_registry_merges_into_ambient(self):
        ambient = MetricsRegistry()
        with use_obs(ObsContext(tracer=NULL_TRACER, metrics=ambient)):
            for _ in range(2):
                XRingSynthesizer(
                    _network(), SynthesisOptions(milp_backend="branch_bound")
                ).run()
        assert ambient.counter("milp.solves.optimal").value >= 2

    def test_degradation_logs_warning_with_span_id(self, caplog):
        from repro.robustness import FaultPlan

        plan = FaultPlan().error("shortcuts", "injected")
        # configure_logging turns off propagation (own stderr handler);
        # caplog listens on the root logger, so re-enable it here.
        repro_logger = logging.getLogger("repro")
        old_propagate = repro_logger.propagate
        repro_logger.propagate = True
        try:
            with caplog.at_level(logging.WARNING, logger="repro.synthesizer"):
                design = XRingSynthesizer(
                    _network(), SynthesisOptions(), fault_plan=plan
                ).run()
        finally:
            repro_logger.propagate = old_propagate
        assert design.report.stage("shortcuts").fallback == "no_shortcuts"
        messages = [r.getMessage() for r in caplog.records]
        assert any("shortcut" in m and "span_id" in m for m in messages)

    def test_null_tracer_overhead_under_five_percent(self):
        # min-of-reps timing of the identical workload with tracing off
        # (ambient null) and on; the bound has a small absolute slack
        # so scheduler noise on a ~100 ms workload cannot flake it.
        network = _network()
        options = SynthesisOptions(milp_backend="branch_bound")

        def once(tracer) -> float:
            start = time.perf_counter()
            XRingSynthesizer(network, options, tracer=tracer).run()
            return time.perf_counter() - start

        once(NULL_TRACER)  # warm caches before timing
        disabled = min(once(NULL_TRACER) for _ in range(3))
        enabled = min(once(Tracer()) for _ in range(3))
        assert abs(enabled - disabled) <= 0.05 * disabled + 0.010


# -- CLI wiring --------------------------------------------------------------
class TestCliArtifacts:
    def test_synth_trace_dir_produces_loadable_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run"
        code = main(
            [
                "synth",
                "--nodes",
                "8",
                "--milp-backend",
                "branch_bound",
                "--trace-dir",
                str(out),
                "--metrics",
            ]
        )
        assert code == 0
        chrome = json.loads((out / "trace.json").read_text())
        names = {e["name"] for e in chrome["traceEvents"]}
        assert {
            "synthesize",
            "stage.ring",
            "stage.shortcuts",
            "stage.mapping",
            "stage.pdn",
        } <= names
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["counters"]["milp.simplex.pivots"] > 0
        assert metrics["counters"]["milp.bb.nodes"] > 0
        report = json.loads((out / "report.json").read_text())
        assert report["stages"][0]["span_id"] is not None
        assert (out / "trace.jsonl").read_text().strip()
        assert (out / "metrics.om").read_text().endswith("# EOF\n")


# -- histogram edge cases ----------------------------------------------------
class TestHistogramEdgeCases:
    def test_empty_histogram_percentiles(self):
        empty = Histogram("empty", buckets=(1.0, 2.0))
        for q in (0, 50, 100):
            assert math.isnan(empty.percentile(q))
        data = empty.to_dict()
        assert data["p50"] is None and data["p99"] is None
        assert data["min"] is None and data["mean"] is None
        with pytest.raises(ValueError):
            empty.percentile(101)

    def test_single_sample_interpolation_collapses_to_the_sample(self):
        hist = Histogram("one", buckets=(1.0, 10.0, 100.0))
        hist.observe(7.0)
        # With one observation every percentile must equal it exactly —
        # the in-bucket interpolation is clamped to [min, max].
        for q in (0, 1, 50, 90, 99, 100):
            assert hist.percentile(q) == 7.0

    def test_merge_snapshot_with_only_overflow_counts(self):
        # Matching edges: the overflow bucket must transfer exactly.
        target = MetricsRegistry()
        target.histogram("h", (1.0, 2.0))
        source = MetricsRegistry()
        source.histogram("h", (1.0, 2.0)).observe(50.0)
        source.histogram("h").observe(99.0)
        snap = source.snapshot()
        assert snap["histograms"]["h"]["counts"] == [0, 0, 2]
        target.merge_snapshot(snap)
        merged = target.histogram("h")
        assert merged.counts == [0, 0, 2]
        assert merged.total == 2
        assert merged.max == 99.0
        assert merged.percentile(99) == 99.0

    def test_merge_snapshot_overflow_only_with_mismatched_edges(self):
        # Mismatched edges degrade to re-observing the mean per count;
        # totals and sums stay consistent even when every incoming
        # sample sat in the overflow bucket.
        target = MetricsRegistry()
        target.histogram("h", (1.0,)).observe(0.5)
        source = MetricsRegistry()
        source.histogram("h", (10.0, 20.0)).observe(50.0)
        source.histogram("h").observe(70.0)
        target.merge_snapshot(source.snapshot())
        merged = target.histogram("h")
        assert merged.total == 3
        assert merged.sum == pytest.approx(0.5 + 60.0 * 2)
        assert merged.buckets == (1.0,)  # the target's edges win


# -- chrome export round-trip ------------------------------------------------
class TestChromeExportConsistency:
    def test_export_is_valid_json_with_consistent_ts_dur(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                time.sleep(0.002)
            with tracer.span("child_b"):
                pass
        text = json.dumps(tracer.to_chrome())
        payload = json.loads(text)  # valid JSON round-trip
        events = payload["traceEvents"]
        assert len(events) == 3
        spans = {s.span_id: s for s in tracer.finished_spans()}
        for event in events:
            assert event["ph"] == "X"
            span = spans[event["args"]["span_id"]]
            # ts/dur are the span's start/duration in microseconds.
            assert event["ts"] == pytest.approx(span.start_s * 1e6)
            assert event["dur"] == pytest.approx(span.duration_s * 1e6)
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_children_nest_within_their_parent_interval(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                time.sleep(0.001)
        events = {e["name"]: e for e in tracer.to_chrome()["traceEvents"]}
        root, child = events["root"], events["child"]
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert root["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3
        # Monotonic consistency: a span never ends before it starts.
        for event in events.values():
            assert event["dur"] >= 0
