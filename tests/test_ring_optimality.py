"""Brute-force optimality cross-check for the Step-1 construction.

For tiny networks we can enumerate every Hamiltonian cycle, keep the
ones whose edges are pairwise conflict-free (the feasibility notion of
Sec. III-A), and compare the best length against what the MILP +
merge heuristic produces.  The MILP alone is exact for its relaxation;
the sub-cycle merge is heuristic, so the flow's result must match the
brute-force optimum whenever the solver returns a single cycle and may
exceed it only slightly otherwise.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ring import construct_ring_tour
from repro.geometry import Point, edges_conflict


def _brute_force_best(points) -> float | None:
    """Length of the best pairwise-conflict-free tour, or None."""
    n = len(points)
    best = None
    for perm in itertools.permutations(range(1, n)):
        order = (0,) + perm
        edges = [
            (points[order[k]], points[order[(k + 1) % n]]) for k in range(n)
        ]
        if any(
            edges_conflict(e1, e2)
            for e1, e2 in itertools.combinations(edges, 2)
        ):
            continue
        length = sum(a.manhattan(b) for a, b in edges)
        if best is None or length < best:
            best = length
    return best


@st.composite
def tiny_point_sets(draw):
    n = draw(st.integers(4, 5))
    coords = st.integers(0, 5)
    points = []
    seen = set()
    while len(points) < n:
        x, y = draw(coords), draw(coords)
        if (x, y) not in seen:
            seen.add((x, y))
            points.append(Point(float(x), float(y)))
    return points


class TestOptimality:
    @given(tiny_point_sets())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.large_base_example],
    )
    def test_flow_matches_brute_force(self, points):
        best = _brute_force_best(points)
        if best is None:
            return  # no conflict-free tour exists at all
        tour = construct_ring_tour(points)
        # The merge heuristic may cost extra length when the MILP
        # returns sub-cycles; allow a small slack but never better
        # than the true optimum.
        assert tour.length_mm >= best - 1e-6
        assert tour.length_mm <= 1.25 * best + 1e-6

    def test_known_square_optimum(self):
        points = [Point(0, 0), Point(3, 0), Point(3, 3), Point(0, 3)]
        assert _brute_force_best(points) == pytest.approx(12.0)
        assert construct_ring_tour(points).length_mm == pytest.approx(12.0)

    def test_known_rectangle_with_interior_detour(self):
        # A point strictly inside the hull forces a detour: the tour
        # must leave the rectangle perimeter to pick it up.
        points = [
            Point(0, 0),
            Point(4, 0),
            Point(4, 4),
            Point(0, 4),
            Point(2, 2),
        ]
        best = _brute_force_best(points)
        tour = construct_ring_tour(points)
        assert best is not None
        assert tour.length_mm == pytest.approx(best)
        assert tour.length_mm > 16.0  # strictly worse than the plain hull
