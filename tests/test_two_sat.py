"""Unit and property tests for the 2-SAT solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import TwoSat


class TestTwoSatBasics:
    def test_trivial_empty(self):
        assert TwoSat(0).solve() == []

    def test_single_forced(self):
        ts = TwoSat(1)
        ts.force(0, True)
        assert ts.solve() == [True]

    def test_contradiction(self):
        ts = TwoSat(1)
        ts.force(0, True)
        ts.force(0, False)
        assert ts.solve() is None

    def test_implication_chain(self):
        ts = TwoSat(3)
        ts.force(0, True)
        ts.add_implication(0, True, 1, True)
        ts.add_implication(1, True, 2, False)
        solution = ts.solve()
        assert solution == [True, True, False]

    def test_forbid(self):
        ts = TwoSat(2)
        ts.forbid(0, True, 1, True)
        ts.force(0, True)
        solution = ts.solve()
        assert solution is not None
        assert solution[0] is True and solution[1] is False

    def test_xor_cycle_satisfiable(self):
        ts = TwoSat(2)
        ts.add_clause(0, True, 1, True)
        ts.add_clause(0, False, 1, False)
        solution = ts.solve()
        assert solution is not None
        assert solution[0] != solution[1]

    def test_out_of_range(self):
        ts = TwoSat(2)
        with pytest.raises(IndexError):
            ts.add_clause(0, True, 5, True)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            TwoSat(-1)


clause_strategy = st.tuples(
    st.integers(0, 4), st.booleans(), st.integers(0, 4), st.booleans()
)


def brute_force(num_vars: int, clauses) -> bool:
    for bits in itertools.product([True, False], repeat=num_vars):
        if all(bits[v1] == val1 or bits[v2] == val2 for v1, val1, v2, val2 in clauses):
            return True
    return False


class TestTwoSatProperties:
    @given(st.lists(clause_strategy, max_size=14))
    @settings(max_examples=200)
    def test_matches_brute_force(self, clauses):
        num_vars = 5
        ts = TwoSat(num_vars)
        for v1, val1, v2, val2 in clauses:
            ts.add_clause(v1, val1, v2, val2)
        solution = ts.solve()
        expected = brute_force(num_vars, clauses)
        assert (solution is not None) == expected
        if solution is not None:
            for v1, val1, v2, val2 in clauses:
                assert solution[v1] == val1 or solution[v2] == val2

    @given(st.integers(1, 50))
    def test_unconstrained_always_satisfiable(self, n):
        assert TwoSat(n).solve() is not None

    def test_long_implication_chain_no_recursion_limit(self):
        n = 5000
        ts = TwoSat(n)
        ts.force(0, True)
        for i in range(n - 1):
            ts.add_implication(i, True, i + 1, True)
        solution = ts.solve()
        assert solution == [True] * n
