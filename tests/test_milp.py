"""Unit tests for the MILP modelling layer and both backends."""

import math

import pytest

from repro.milp import Model, Sense, SolveStatus
from repro.milp.expression import LinExpr, lin_sum


class TestExpressions:
    def test_var_arithmetic(self):
        m = Model()
        x, y = m.add_var("x"), m.add_var("y")
        expr = 2 * x + y - 3
        assert expr.coeffs == {x.index: 2.0, y.index: 1.0}
        assert expr.constant == -3.0

    def test_negation_and_rsub(self):
        m = Model()
        x = m.add_var("x")
        expr = 5 - x
        assert expr.coeffs[x.index] == -1.0
        assert expr.constant == 5.0

    def test_lin_sum_merges_terms(self):
        m = Model()
        x = m.add_var("x")
        expr = lin_sum([x, x, 2 * x, 1.5])
        assert expr.coeffs[x.index] == 4.0
        assert expr.constant == 1.5

    def test_scalar_multiplication_only(self):
        m = Model()
        x, y = m.add_var(), m.add_var()
        with pytest.raises(TypeError):
            _ = x.to_expr() * y.to_expr()  # type: ignore[operator]

    def test_comparison_builds_constraint(self):
        m = Model()
        x, y = m.add_var(), m.add_var()
        con = x + y <= 3
        assert con.sense is Sense.LE
        assert con.rhs == 3.0

    def test_constant_folded_into_rhs(self):
        m = Model()
        x = m.add_var()
        con = x + 2 <= 5
        assert con.rhs == 3.0
        assert con.expr.constant == 0.0


class TestModelConstruction:
    def test_binary_var_bounds(self):
        m = Model()
        b = m.binary_var("b")
        assert (b.lb, b.ub, b.is_integer) == (0.0, 1.0, True)

    def test_invalid_bounds(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_var(lb=2, ub=1)

    def test_counts(self):
        m = Model()
        m.binary_var()
        m.add_var(lb=0, ub=10)
        assert m.num_vars == 2 and m.num_binaries == 1

    def test_add_constraint_type_check(self):
        m = Model()
        with pytest.raises(TypeError):
            m.add_constraint("x <= 1")  # type: ignore[arg-type]

    def test_constraint_satisfied_by(self):
        m = Model()
        x, y = m.add_var(), m.add_var()
        con = x + 2 * y <= 4
        assert con.satisfied_by([0.0, 2.0])
        assert not con.satisfied_by([1.0, 2.0])


@pytest.mark.parametrize("backend", ["scipy", "branch_bound"])
class TestSolving:
    def test_simple_lp(self, backend):
        m = Model()
        x = m.add_var(lb=0, ub=10)
        y = m.add_var(lb=0, ub=10)
        m.add_constraint(x + y <= 8)
        m.maximize(3 * x + 2 * y)
        sol = m.solve(backend=backend)
        assert sol.is_optimal
        # Optimum at x = 8, y = 0 (the x coefficient dominates).
        assert sol.objective == pytest.approx(-24.0)
        assert sol[x] == pytest.approx(8.0)

    def test_binary_knapsack(self, backend):
        m = Model()
        items = [(3, 5), (4, 6), (5, 7), (2, 3)]  # (weight, value)
        xs = [m.binary_var(f"x{i}") for i in range(len(items))]
        m.add_constraint(lin_sum(w * x for (w, _), x in zip(items, xs)) <= 7)
        m.maximize(lin_sum(v * x for (_, v), x in zip(items, xs)))
        sol = m.solve(backend=backend)
        assert sol.is_optimal
        # Best: items 0 and 1 (weight 7, value 11).
        assert -sol.objective == pytest.approx(11.0)

    def test_infeasible(self, backend):
        m = Model()
        x = m.binary_var()
        m.add_constraint(x >= 2)
        sol = m.solve(backend=backend)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_equality_constraints(self, backend):
        m = Model()
        x = m.add_var(lb=0, ub=5)
        y = m.add_var(lb=0, ub=5)
        m.add_constraint(x + y == 4)
        m.minimize(x - y)
        sol = m.solve(backend=backend)
        assert sol.is_optimal
        assert sol[y] == pytest.approx(4.0)
        assert sol.objective == pytest.approx(-4.0)

    def test_assignment_problem(self, backend):
        # 3x3 assignment with known optimum.
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        m = Model()
        xs = {
            (i, j): m.binary_var(f"x{i}{j}") for i in range(3) for j in range(3)
        }
        for i in range(3):
            m.add_constraint(lin_sum(xs[(i, j)] for j in range(3)) == 1)
            m.add_constraint(lin_sum(xs[(j, i)] for j in range(3)) == 1)
        m.minimize(lin_sum(cost[i][j] * xs[(i, j)] for i, j in xs))
        sol = m.solve(backend=backend)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(5.0)  # 1 + 2 + 2

    def test_value_as_int(self, backend):
        m = Model()
        x = m.binary_var()
        m.add_constraint(x >= 1)
        m.minimize(x)
        sol = m.solve(backend=backend)
        assert sol.value(x, as_int=True) == 1


class TestBackendAgreement:
    """The two backends must agree on small random-ish instances."""

    def _random_model(self, seed: int) -> Model:
        import random

        rng = random.Random(seed)
        m = Model()
        xs = [m.binary_var(f"x{i}") for i in range(6)]
        for _ in range(4):
            subset = rng.sample(xs, 3)
            m.add_constraint(lin_sum(subset) <= rng.randint(1, 2))
        m.maximize(lin_sum(rng.randint(1, 9) * x for x in xs))
        return m

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement(self, seed):
        m = self._random_model(seed)
        a = m.solve(backend="scipy")
        b = m.solve(backend="branch_bound")
        assert a.is_optimal and b.is_optimal
        assert a.objective == pytest.approx(b.objective, abs=1e-6)


class TestMaximizeHelper:
    def test_maximize_negates(self):
        m = Model()
        x = m.add_var(lb=0, ub=3)
        m.maximize(x)
        sol = m.solve()
        assert sol[x] == pytest.approx(3.0)
        assert sol.objective == pytest.approx(-3.0)
