"""Unit tests for Step 2: shortcut selection and CSE merging."""

import pytest

from repro.core.shortcuts import (
    LegDirection,
    _ChordMaze,
    select_shortcuts,
)
from repro.geometry import paths_cross
from repro.photonics.parameters import ORING_LOSSES


class TestSelection:
    def test_disabled_returns_empty(self, tour16):
        plan = select_shortcuts(tour16, enabled=False)
        assert plan.shortcuts == [] and plan.served == {}

    def test_one_shortcut_per_node(self, tour16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        used = [n for s in plan.shortcuts for n in (s.node_a, s.node_b)]
        assert len(used) == len(set(used))

    def test_gains_positive(self, tour16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        assert plan.shortcuts, "expected some shortcuts on the 16-node ring"
        for s in plan.shortcuts:
            assert s.gain_mm > 0
            best_ring = min(
                tour16.cw_distance(s.node_a, s.node_b),
                tour16.ccw_distance(s.node_a, s.node_b),
            )
            assert s.gain_mm == pytest.approx(best_ring - s.length_mm)

    def test_shortcut_paths_do_not_cross_ring(self, tour16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        for s in plan.shortcuts:
            endpoints = (tour16.points[s.node_a], tour16.points[s.node_b])
            for edge_path in tour16.edge_paths:
                # Crossings only within the attach zones at the
                # shortcut's own terminals (grid-snap tolerance).
                crossings = [
                    p
                    for p in _proper_crossings(s.path, edge_path)
                    if all(p.manhattan(e) > 0.5 for e in endpoints)
                ]
                assert not crossings

    def test_crossing_budget(self, tour8, tour16):
        for tour in (tour8, tour16):
            plan = select_shortcuts(tour, loss=ORING_LOSSES)
            for idx, s in enumerate(plan.shortcuts):
                crossers = [
                    j
                    for j, other in enumerate(plan.shortcuts)
                    if j != idx and paths_cross(s.path, other.path)
                ]
                assert len(crossers) <= 1
                if crossers:
                    assert s.partner == crossers[0]

    def test_max_shortcuts_cap(self, tour16):
        plan = select_shortcuts(tour16, max_shortcuts=2, loss=ORING_LOSSES)
        assert len(plan.shortcuts) <= 2

    def test_selection_policy_validation(self, tour8):
        with pytest.raises(ValueError):
            select_shortcuts(tour8, selection="bogus")

    def test_ring_length_policy_serves_long_pairs(self, tour16):
        plan = select_shortcuts(
            tour16, loss=ORING_LOSSES, selection="ring_length"
        )
        assert plan.shortcuts
        longest = max(
            min(tour16.cw_distance(a, b), tour16.ccw_distance(a, b))
            for a in range(tour16.size)
            for b in range(tour16.size)
            if a != b
        )
        served_ring_lengths = [
            min(
                tour16.cw_distance(s.node_a, s.node_b),
                tour16.ccw_distance(s.node_a, s.node_b),
            )
            for s in plan.shortcuts
        ]
        # The longest-suffering pair family is attacked first.
        assert max(served_ring_lengths) >= 0.8 * longest


class TestServedPairs:
    def test_direct_pairs_served_both_directions(self, tour16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        for s in plan.shortcuts:
            assert (s.node_a, s.node_b) in plan.served
            assert (s.node_b, s.node_a) in plan.served

    def test_leg_geometry(self, tour16):
        plan = select_shortcuts(tour16, loss=ORING_LOSSES)
        for idx, s in enumerate(plan.shortcuts):
            legs = plan.served[(s.node_a, s.node_b)]
            assert len(legs) == 1
            leg = legs[0]
            assert leg.direction is LegDirection.FORWARD
            assert leg.start_mm == 0.0
            assert leg.end_mm == pytest.approx(s.length_mm)

    def test_merged_pairs_have_two_legs(self, tour8):
        plan = select_shortcuts(tour8)
        for pair in plan.crossing_pairs:
            s1, s2 = plan.shortcuts[pair[0]], plan.shortcuts[pair[1]]
            merged_key = (s1.node_a, s2.node_b)
            if merged_key in plan.served:
                assert len(plan.served[merged_key]) == 2


class TestChordMaze:
    def test_chord_avoids_ring(self, tour16):
        maze = _ChordMaze(tour16)
        a, b = tour16.order[0], tour16.order[tour16.size // 2]
        chord = maze.chord(tour16.points[a], tour16.points[b])
        assert chord is not None
        assert chord.start.almost_equals(tour16.points[a])
        assert chord.end.almost_equals(tour16.points[b])
        # Length at least Manhattan, at most the better ring arc.
        manhattan = tour16.points[a].manhattan(tour16.points[b])
        assert chord.length >= manhattan - 1e-6

    def test_chord_respects_extra_obstacles(self, tour16):
        maze = _ChordMaze(tour16)
        a, b = tour16.order[0], tour16.order[tour16.size // 2]
        free = maze.chord(tour16.points[a], tour16.points[b])
        assert free is not None
        blocked = maze.blocked_by_paths([free])
        detour = maze.chord(
            tour16.points[a], tour16.points[b], extra_blocked=blocked
        )
        if detour is not None:
            assert detour.length >= free.length - 1e-6


def _proper_crossings(p1, p2):
    from repro.geometry import crossing_points

    return crossing_points(p1, p2)
