"""Tests of the dense two-phase simplex against scipy's linprog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.milp.simplex import LPStatus, solve_lp


class TestSimplexBasics:
    def test_simple_minimization(self):
        result = solve_lp(
            c=np.array([1.0, 2.0]),
            a_rows=np.array([[1.0, 1.0]]),
            senses=[">="],
            b=np.array([3.0]),
            lb=np.zeros(2),
            ub=np.array([np.inf, np.inf]),
        )
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(3.0)
        assert result.x[0] == pytest.approx(3.0)

    def test_infeasible(self):
        result = solve_lp(
            c=np.array([1.0]),
            a_rows=np.array([[1.0]]),
            senses=[">="],
            b=np.array([5.0]),
            lb=np.zeros(1),
            ub=np.array([2.0]),
        )
        assert result.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        result = solve_lp(
            c=np.array([-1.0]),
            a_rows=np.zeros((0, 1)),
            senses=[],
            b=np.array([]),
            lb=np.zeros(1),
            ub=np.array([np.inf]),
        )
        assert result.status is LPStatus.UNBOUNDED

    def test_shifted_lower_bounds(self):
        result = solve_lp(
            c=np.array([1.0]),
            a_rows=np.zeros((0, 1)),
            senses=[],
            b=np.array([]),
            lb=np.array([2.5]),
            ub=np.array([10.0]),
        )
        assert result.status is LPStatus.OPTIMAL
        assert result.x[0] == pytest.approx(2.5)

    def test_equality_row(self):
        result = solve_lp(
            c=np.array([1.0, 1.0]),
            a_rows=np.array([[1.0, 2.0]]),
            senses=["=="],
            b=np.array([4.0]),
            lb=np.zeros(2),
            ub=np.array([np.inf, np.inf]),
        )
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)  # x=(0, 2)

    def test_rejects_infinite_lower_bound(self):
        with pytest.raises(ValueError):
            solve_lp(
                c=np.array([1.0]),
                a_rows=np.zeros((0, 1)),
                senses=[],
                b=np.array([]),
                lb=np.array([-np.inf]),
                ub=np.array([np.inf]),
            )


@st.composite
def lp_instances(draw):
    """Small random LPs with bounded variables (always feasible at lb)."""
    n = draw(st.integers(2, 4))
    m = draw(st.integers(1, 3))
    c = [draw(st.integers(-5, 5)) for _ in range(n)]
    rows = [[draw(st.integers(-3, 3)) for _ in range(n)] for _ in range(m)]
    # b >= 0 with "<=" rows keeps x = 0 feasible.
    b = [draw(st.integers(0, 10)) for _ in range(m)]
    ub = [draw(st.integers(1, 5)) for _ in range(n)]
    return c, rows, b, ub


class TestSimplexAgainstScipy:
    @given(lp_instances())
    @settings(max_examples=60, deadline=None)
    def test_matches_linprog(self, instance):
        from scipy.optimize import linprog

        c, rows, b, ub = instance
        n = len(c)
        result = solve_lp(
            c=np.array(c, dtype=float),
            a_rows=np.array(rows, dtype=float),
            senses=["<="] * len(rows),
            b=np.array(b, dtype=float),
            lb=np.zeros(n),
            ub=np.array(ub, dtype=float),
        )
        reference = linprog(
            c,
            A_ub=rows,
            b_ub=b,
            bounds=[(0, u) for u in ub],
            method="highs",
        )
        assert result.status is LPStatus.OPTIMAL
        assert reference.status == 0
        assert result.objective == pytest.approx(reference.fun, abs=1e-6)
