"""Tests for the LP export and the Snake crossbar topology."""

import pytest

from repro.baselines.crossbar import Gwor, Snake
from repro.milp import Model
from repro.milp.expression import lin_sum


class TestLpExport:
    def make_model(self):
        model = Model("demo")
        x = model.binary_var("x")
        y = model.add_var("y", lb=1.0, ub=5.0)
        model.add_constraint(x + 2 * y <= 7, name="cap")
        model.add_constraint(y - x >= 0.5)
        model.minimize(3 * x + y)
        return model, x, y

    def test_sections_present(self):
        model, _, _ = self.make_model()
        text = model.to_lp_string()
        for section in ("Minimize", "Subject To", "Bounds", "General", "End"):
            assert section in text

    def test_terms_and_names(self):
        model, _, _ = self.make_model()
        text = model.to_lp_string()
        assert "+ 3 x" in text
        assert "cap:" in text
        assert "1 <= y <= 5" in text
        assert "General\n x" in text

    def test_no_integers_section_for_pure_lp(self):
        model = Model()
        v = model.add_var("v", lb=0, ub=1)
        model.minimize(v)
        assert "General" not in model.to_lp_string()

    def test_infinite_bounds(self):
        model = Model()
        model.add_var("free", lb=0)
        assert "+inf" in model.to_lp_string()


class TestSnake:
    def test_route_counts(self):
        snake = Snake(8)
        routes = snake.all_routes()
        assert len(routes) == 56
        assert snake.wavelength_count == 7

    def test_route_connectivity(self):
        snake = Snake(8)
        netlist = snake.build_netlist()
        for route in snake.all_routes():
            for a, b in zip(route.stops, route.stops[1:]):
                netlist.segment_between(a, b)

    def test_single_drop(self):
        snake = Snake(6)
        for route in snake.all_routes():
            assert route.drops == 1

    def test_corner_routes(self):
        snake = Snake(8)
        # src = N-1 to dst = 0 turns at the south-west cell: shortest.
        short = snake.route(7, 0)
        long = snake.route(0, 7)
        assert short.throughs < long.throughs

    def test_wavelengths_unique_per_receiver(self):
        snake = Snake(8)
        for dst in range(8):
            wavelengths = [
                snake.route(src, dst).wavelength for src in range(8) if src != dst
            ]
            assert len(set(wavelengths)) == len(wavelengths)

    def test_snake_worse_than_gwor(self):
        """Snake's full matrix beats per-signal crossings records."""
        snake_worst = max(
            r.crossings_logical for r in Snake(8).all_routes()
        )
        gwor_worst = max(r.crossings_logical for r in Gwor(8).all_routes())
        assert snake_worst >= gwor_worst

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            Snake(4).route(1, 1)
