"""Unit tests for the consistent-hash ring and one live cache node.

The ring layer is pure data structure (deterministic hashing, no
sockets); the node layer hosts one :class:`CacheNodeServer` on a
background thread and drives it through :class:`ShardClient` — real
HTTP over localhost, no subprocesses.  Multi-process failover lives in
``test_cache_failover.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.parallel.shard import (
    ShardClient,
    ShardRing,
    hash_to_id,
    in_interval_open_closed,
    parse_node,
    serve_cache_node,
)
from repro.parallel.store import ENTRY_SUFFIX


# ---------------------------------------------------------------------------
# identifier circle
# ---------------------------------------------------------------------------
class TestInterval:
    def test_plain_interval(self):
        assert in_interval_open_closed(5, 3, 8)
        assert in_interval_open_closed(8, 3, 8)  # closed at self
        assert not in_interval_open_closed(3, 3, 8)  # open at pred
        assert not in_interval_open_closed(9, 3, 8)

    def test_wrapping_interval(self):
        assert in_interval_open_closed(1, 200, 10)
        assert in_interval_open_closed(201, 200, 10)
        assert not in_interval_open_closed(100, 200, 10)

    def test_single_node_owns_everything(self):
        assert in_interval_open_closed(42, 7, 7)

    def test_hash_is_deterministic_and_64_bit(self):
        assert hash_to_id("node-a") == hash_to_id("node-a")
        assert 0 <= hash_to_id("node-a") < (1 << 64)
        assert hash_to_id("node-a") != hash_to_id("node-b")


class TestParseNode:
    def test_roundtrip(self):
        assert parse_node("127.0.0.1:8787") == ("127.0.0.1", 8787)

    def test_malformed_rejected(self):
        for bad in ("localhost", ":8787", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_node(bad)


# ---------------------------------------------------------------------------
# ring semantics
# ---------------------------------------------------------------------------
KEYS = [f"key-{i}" for i in range(200)]


class TestShardRing:
    def test_owners_distinct_and_replicated(self):
        ring = ShardRing(["a:1", "b:2", "c:3"])
        for key in KEYS:
            owners = ring.owners(key, 2)
            assert len(owners) == 2
            assert len(set(owners)) == 2

    def test_single_node_owns_all(self):
        ring = ShardRing(["a:1"])
        assert all(ring.primary(key) == "a:1" for key in KEYS)
        assert ring.owners("k", 3) == ["a:1"]

    def test_empty_ring(self):
        assert ShardRing().owners("k", 2) == []
        assert ShardRing().primary("k") is None

    def test_vnodes_balance_two_nodes(self):
        ring = ShardRing(["a:1", "b:2"])
        primaries = [ring.primary(key) for key in KEYS]
        share_a = primaries.count("a:1") / len(KEYS)
        # 32 vnodes keep the split far from one lucky arc.
        assert 0.2 < share_a < 0.8

    def test_join_moves_only_adjacent_intervals(self):
        before = ShardRing(["a:1", "b:2"])
        owner_before = {key: before.primary(key) for key in KEYS}
        after = ShardRing(["a:1", "b:2"])
        after.add_node("c:3")
        moved = sum(
            1 for key in KEYS if after.primary(key) != owner_before[key]
        )
        # Every moved key moved *to* the joiner, and roughly its fair
        # share (1/3) of the keyspace — not a wholesale reshuffle.
        for key in KEYS:
            if after.primary(key) != owner_before[key]:
                assert after.primary(key) == "c:3"
        assert moved < len(KEYS) * 0.6

    def test_leave_hands_keys_to_survivors(self):
        ring = ShardRing(["a:1", "b:2", "c:3"])
        owner_before = {key: ring.primary(key) for key in KEYS}
        ring.remove_node("c:3")
        for key in KEYS:
            if owner_before[key] != "c:3":
                assert ring.primary(key) == owner_before[key]
            else:
                assert ring.primary(key) in ("a:1", "b:2")

    def test_add_is_idempotent(self):
        ring = ShardRing(["a:1"])
        ring.add_node("a:1")
        assert ring.nodes == ["a:1"]
        ring.remove_node("missing:9")
        assert ring.nodes == ["a:1"]

    def test_replication_capped_by_cluster_size(self):
        client = ShardClient(["a:1", "b:2"], replication=5)
        assert client.replication == 2

    def test_malformed_node_fails_fast(self):
        with pytest.raises(ValueError):
            ShardClient(["nonsense"])


# ---------------------------------------------------------------------------
# one live node, in-thread
# ---------------------------------------------------------------------------
class NodeThread:
    """One ``CacheNodeServer`` on a daemon thread (LiveServer pattern)."""

    def __init__(self, directory):
        self.node = None
        self.error = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(
            target=self._run, args=(directory,), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError(f"cache node did not start: {self.error}")

    def _run(self, directory):
        try:
            asyncio.run(self._main(directory))
        except BaseException as exc:
            self.error = exc
            self._ready.set()

    async def _main(self, directory):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()

        def on_ready(node):
            self.node = node
            self._ready.set()

        await serve_cache_node(
            directory, port=0, stop_event=self._stop, ready_callback=on_ready
        )

    @property
    def address(self) -> str:
        host, port = self.node.address
        return f"{host}:{port}"

    def stop(self):
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        if self.error is not None:
            raise self.error


@pytest.fixture
def node(tmp_path):
    thread = NodeThread(tmp_path / "node")
    yield thread
    thread.stop()


class TestCacheNode:
    def test_put_get_roundtrip_over_http(self, node):
        client = ShardClient([node.address], replication=1)
        assert client.put("results", "k1", b"over-the-wire", {"kind": "t"})
        assert client.get("results", "k1") == (
            b"over-the-wire",
            {"kind": "t"},
        )
        assert client.get("results", "nope") is None
        assert client.counters["hits:results"] == 1
        assert client.counters["misses:results"] == 1

    def test_address_file_published(self, node, tmp_path):
        published = (tmp_path / "node" / "address").read_text().strip()
        assert published == node.address

    def test_healthz_stats_keys(self, node):
        client = ShardClient([node.address], replication=1)
        client.put("results", "k1", b"x", {})
        health = client.node_json(node.address, "GET", "/healthz")
        assert health["status"] == "ok"
        stats = client.node_json(node.address, "GET", "/stats")
        assert stats["entries"] == 1
        keys = client.node_json(node.address, "GET", "/keys")["keys"]
        assert "k1" in keys["results"]

    def test_scrub_quarantines_server_side(self, node, tmp_path):
        client = ShardClient([node.address], replication=1)
        client.put("results", "k1", b"z" * 64, {})
        (entry,) = [
            p
            for p in (tmp_path / "node").rglob(f"*{ENTRY_SUFFIX}")
            if "quarantine" not in p.parts
        ]
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF
        entry.write_bytes(bytes(blob))
        report = client.node_json(node.address, "POST", "/scrub")
        assert report["quarantined"] == 1
        # Quarantined server-side: a read is now a clean miss.
        assert client.get("results", "k1") is None

    def test_gc_endpoint(self, node):
        client = ShardClient([node.address], replication=1)
        for i in range(3):
            client.put("results", f"k{i}", bytes(50), {})
        report = client.node_json(node.address, "POST", "/gc?max_bytes=0")
        assert report["evicted"] == 3
        assert client.node_json(node.address, "GET", "/stats")["entries"] == 0

    def test_unknown_route_and_method(self, node):
        url = f"http://{node.address}"
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{url}/nonsense", timeout=10)
        assert exc.value.code == 404
        request = urllib.request.Request(
            f"{url}/entry/results/k1", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 405

    def test_client_rejects_checksum_mismatch(self, node, monkeypatch):
        client = ShardClient([node.address], replication=1)
        client.put("results", "k1", b"tamper-target", {})
        real = client._request

        def tampered(node_addr, method, path, body=b"", headers=None):
            status, data, resp_headers = real(
                node_addr, method, path, body, headers
            )
            if method == "GET" and path.startswith("/entry/"):
                data = data[:-1] + b"?"  # corrupt in flight
            return status, data, resp_headers

        monkeypatch.setattr(client, "_request", tampered)
        # Corrupt bytes must not cross the client boundary: miss, not
        # a poisoned payload.
        assert client.get("results", "k1") is None
        assert client.counters.get("errors", 0) >= 1
