"""Tests for the visualization helpers and the command-line interface."""

import pytest

from repro import synthesize
from repro.network import Network
from repro.network.placement import psion_placement
from repro.viz import ascii_layout, bar_chart, render_design_svg


@pytest.fixture(scope="module")
def design8():
    points, die = psion_placement(8)
    network = Network.from_positions(points, die=die)
    return synthesize(network, wl_budget=8)


class TestSvg:
    def test_valid_document(self, design8):
        svg = render_design_svg(design8)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_contains_all_layers(self, design8):
        svg = render_design_svg(design8)
        assert svg.count("<polyline") >= design8.tour.size  # ring edges
        assert "#d60" in svg if design8.shortcut_count else True  # shortcuts
        assert "#07c" in svg  # PDN
        assert svg.count("<circle") == design8.network.size

    def test_node_labels(self, design8):
        svg = render_design_svg(design8)
        for node in design8.network.nodes:
            assert f">{node.name}</text>" in svg


class TestAscii:
    def test_layout_dimensions(self, design8):
        art = ascii_layout(design8, width=50)
        lines = art.split("\n")
        assert all(len(line) == 50 for line in lines)

    def test_layout_symbols(self, design8):
        art = ascii_layout(design8)
        assert "#" in art  # ring
        assert "o" in art  # opening

    def test_bar_chart(self):
        chart = bar_chart([("a", 1.0), ("bb", 2.0)], width=10, unit="W")
        lines = chart.split("\n")
        assert len(lines) == 2
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bar_chart_empty(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_bar_chart_zero_values(self):
        chart = bar_chart([("a", 0.0)])
        assert "a" in chart


class TestCli:
    def test_synth_command(self, capsys, tmp_path):
        from repro.cli import main

        svg_path = tmp_path / "out.svg"
        code = main(
            ["synth", "--nodes", "8", "--wl", "8", "--svg", str(svg_path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "worst-case il" in captured.out
        assert svg_path.exists()

    def test_synth_no_pdn(self, capsys):
        from repro.cli import main

        assert main(["synth", "--nodes", "8", "--no-pdn"]) == 0
        assert "laser power" not in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--nodes", "8", "--router", "oring"]) == 0
        assert "#wl=" in capsys.readouterr().out

    def test_parser_requires_command(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliPlacement:
    def test_json_placement_with_traffic(self, capsys, tmp_path):
        import json

        from repro.cli import main

        spec = {
            "positions": [[0, 0], [3.1, 0.2], [6.2, 0.1], [6.0, 3.2], [3.2, 3.0], [0.1, 3.1]],
            "traffic": [[0, 3], [3, 0], [1, 4], [4, 1]],
        }
        path = tmp_path / "placement.json"
        path.write_text(json.dumps(spec))
        assert main(["synth", "--placement", str(path), "--wl", "4"]) == 0
        out = capsys.readouterr().out
        assert "XRing synthesis for 6 nodes" in out

    def test_bare_position_list(self, capsys, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "placement.json"
        path.write_text(json.dumps([[0, 0], [2, 0.3], [4.2, 0.1], [2.1, 2.2]]))
        assert main(["synth", "--placement", str(path), "--no-pdn"]) == 0
        assert "4 nodes" in capsys.readouterr().out
