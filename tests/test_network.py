"""Unit tests for placements, traffic generators and networks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network import (
    Network,
    Node,
    all_to_all,
    extended_placement,
    grid_placement,
    oring_placement,
    proton_placement,
    psion_placement,
)
from repro.network.traffic import hotspot, neighbours_only


class TestGridPlacement:
    def test_counts(self):
        assert len(grid_placement(8)) == 8
        assert len(grid_placement(16)) == 16
        assert len(grid_placement(32, columns=8)) == 32

    def test_positions_unique(self):
        points = grid_placement(16)
        assert len({(p.x, p.y) for p in points}) == 16

    def test_no_jitter_is_regular(self):
        points = grid_placement(8, jitter=0.0)
        assert points[1].x - points[0].x == pytest.approx(2.0)
        assert points[0].y == points[1].y

    def test_jitter_breaks_collinearity(self):
        points = grid_placement(16)
        # No two nodes share an exact coordinate (floorplan-like).
        assert len({round(p.x, 6) for p in points}) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_placement(1)
        with pytest.raises(ValueError):
            grid_placement(8, pitch_mm=0)
        with pytest.raises(ValueError):
            grid_placement(8, jitter=-1)
        with pytest.raises(ValueError):
            grid_placement(10, columns=4)

    def test_deterministic(self):
        assert grid_placement(16) == grid_placement(16)


class TestNamedPlacements:
    def test_proton_sizes(self):
        for n in (8, 16):
            points, die = proton_placement(n)
            assert len(points) == n
            assert all(die.contains(p) for p in points)
        with pytest.raises(ValueError):
            proton_placement(32)

    def test_psion_sizes(self):
        for n in (8, 16, 32):
            points, die = psion_placement(n)
            assert len(points) == n
        with pytest.raises(ValueError):
            psion_placement(12)

    def test_psion_32_extends_16(self):
        p16, die16 = psion_placement(16)
        p32, die32 = psion_placement(32)
        assert die32.width > die16.width

    def test_oring_placement(self):
        points, die = oring_placement()
        assert len(points) == 16

    def test_extended_placement(self):
        points, die = extended_placement(24)
        assert len(points) == 24
        assert all(die.contains(p) for p in points)


class TestTraffic:
    def test_all_to_all_count(self):
        assert len(all_to_all(8)) == 56
        assert len(all_to_all(16)) == 240

    def test_all_to_all_no_self(self):
        assert all(s != d for s, d in all_to_all(6))

    @given(st.integers(2, 12))
    def test_all_to_all_complete(self, n):
        pairs = set(all_to_all(n))
        assert len(pairs) == n * (n - 1)

    def test_neighbours_only(self):
        pairs = neighbours_only(5, radius=1)
        assert (0, 1) in pairs and (1, 0) in pairs
        assert (0, 2) not in pairs

    def test_hotspot(self):
        pairs = hotspot(4, hot=2)
        assert len(pairs) == 6
        assert all(2 in pair for pair in pairs)

    def test_traffic_validation(self):
        with pytest.raises(ValueError):
            all_to_all(1)
        with pytest.raises(ValueError):
            neighbours_only(4, radius=0)
        with pytest.raises(ValueError):
            hotspot(4, hot=9)


class TestNetwork:
    def test_from_positions(self):
        net = Network.from_positions(grid_placement(8))
        assert net.size == 8
        assert net.nodes[3].name == "n3"

    def test_default_demands_all_to_all(self):
        net = Network.from_positions(grid_placement(8))
        assert len(net.demands()) == 56

    def test_explicit_traffic(self):
        net = Network.from_positions(grid_placement(8), traffic=[(0, 1)])
        assert net.demands() == ((0, 1),)

    def test_traffic_validation(self):
        with pytest.raises(ValueError):
            Network.from_positions(grid_placement(8), traffic=[(0, 0)])
        with pytest.raises(ValueError):
            Network.from_positions(grid_placement(8), traffic=[(0, 99)])

    def test_bounding_box_fallback(self):
        net = Network.from_positions(grid_placement(8))
        box = net.bounding_box()
        assert all(box.contains(p) for p in net.positions)

    def test_node_index_validation(self):
        with pytest.raises(ValueError):
            Node(-1, grid_placement(8)[0])

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            Network.from_positions(grid_placement(8)[:1])
