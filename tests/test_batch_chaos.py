"""Chaos suite for the supervised batch engine.

Every scenario here is scripted through a :class:`FaultPlan` (or a
poison-pill case that kills its worker on unpickle), so runs replay
identically: a crashed worker is retried and respawned, a hung worker
is killed by the watchdog, a poison case lands in quarantine with its
full failure history, a systemic failure trips the circuit breaker,
and an interrupted journaled batch resumes without recomputing
finished cases.

The supervisor's RNG only jitters backoff *timing*, never results, so
the suite passes under any seed.  CI runs it twice with fixed seeds
via ``REPRO_CHAOS_SEED``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.synthesizer import SynthesisOptions
from repro.geometry import Point
from repro.network import Network
from repro.parallel import (
    BatchCase,
    BatchJournal,
    BatchResult,
    BatchSynthesizer,
    CircuitBreaker,
    SupervisorConfig,
    batch_fingerprint,
    case_key,
    result_digest,
)
from repro.parallel import supervisor as supervisor_module
from repro.robustness import CircuitOpen, ConfigurationError, FaultPlan

#: CI replays the whole suite under two fixed seeds; the seed feeds the
#: supervisor's backoff-jitter RNG and must never change any result.
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _fast_config(**overrides) -> SupervisorConfig:
    """Supervision policy tuned for tests: real retries, tiny delays."""
    settings = dict(
        max_attempts=3,
        backoff_base_s=0.001,
        backoff_cap_s=0.01,
        poll_interval_s=0.02,
        seed=SEED,
    )
    settings.update(overrides)
    return SupervisorConfig(**settings)


def _cases(network, tour, count: int) -> list[BatchCase]:
    """``count`` distinct heuristic cases labelled c0..c{count-1}."""
    return [
        BatchCase(
            network=network,
            options=SynthesisOptions(
                ring_method="heuristic", wl_budget=4 + i, label=f"c{i}"
            ),
            label=f"c{i}",
            tour=tour,
        )
        for i in range(count)
    ]


def _dumps(report) -> list[str | None]:
    """Canonical structural dump per design — the byte-identity probe."""
    return [
        None if design is None else json.dumps(design.to_dict(), sort_keys=True)
        for design in report.designs
    ]


class _KillPill:
    """Unpickling this object hard-exits the process doing the unpickle.

    Smuggled into a :class:`BatchCase` it kills the *worker* while the
    task is being received — a deterministic stand-in for a segfault or
    OOM kill that no amount of retrying can survive.
    """

    def __reduce__(self):
        return (os._exit, (3,))


def _pill_case(network, label: str) -> BatchCase:
    return BatchCase(
        network=network,
        options=SynthesisOptions(ring_method="heuristic", label=label),
        label=label,
        tour=_KillPill(),  # detonates on unpickle in the worker
    )


@pytest.fixture(scope="module")
def baseline12(network8, tour8):
    """Fault-free sequential run of the acceptance batch (12 cases)."""
    report = BatchSynthesizer(workers=1).run(_cases(network8, tour8, 12))
    assert report.ok
    return _dumps(report)


@pytest.fixture(scope="module")
def baseline6(network8, tour8):
    """Fault-free sequential run of the 6-case journal batch."""
    report = BatchSynthesizer(workers=1).run(_cases(network8, tour8, 6))
    assert report.ok
    return _dumps(report)


class TestChaosRecovery:
    def test_crash_and_hang_batch_completes_identically(
        self, network8, tour8, baseline12
    ):
        """The acceptance scenario: one worker crash + one hung case in
        a 12-case batch; all 12 complete, the supervisor reports at
        least one restart and one retry, and the merged output is
        byte-identical to the fault-free sequential run."""
        plan = FaultPlan().worker_crash("c3").worker_hang("c7", seconds=60.0)
        report = BatchSynthesizer(
            workers=2,
            config=_fast_config(case_timeout_s=3.0),
            fault_plan=plan,
        ).run(_cases(network8, tour8, 12))

        assert report.ok
        assert len(report.results) == 12
        assert plan.exhausted

        counters = report.metrics.snapshot()["counters"]
        assert counters["batch.worker_restarts"] >= 1
        assert counters["batch.retries"] >= 1
        assert counters["batch.cases"] == 12

        crashed = report.results[3]
        assert crashed.attempts == 2
        assert [a.kind for a in crashed.failure_history] == ["crash"]
        hung = report.results[7]
        assert hung.attempts == 2
        assert [a.kind for a in hung.failure_history] == ["timeout"]

        assert _dumps(report) == baseline12

    def test_abort_fault_recovers_inline(self, network8, tour8):
        """An OOM-style abort on workers=1 is simulated as a crash
        attempt and retried through the same state machine."""
        plan = FaultPlan().worker_abort("c1")
        report = BatchSynthesizer(
            workers=1, config=_fast_config(), fault_plan=plan
        ).run(_cases(network8, tour8, 4))
        assert report.ok
        assert report.results[1].attempts == 2
        assert report.supervisor["crashes"] == 1
        assert report.supervisor["worker_restarts"] == 1
        assert report.supervisor["retries"] == 1

    def test_inline_hang_becomes_timeout_without_sleeping(
        self, network8, tour8
    ):
        """A 60s hang under a 0.5s budget fails fast in-process — the
        simulation must not actually sleep the injected duration."""
        plan = FaultPlan().worker_hang("c2", seconds=60.0)
        report = BatchSynthesizer(
            workers=1,
            config=_fast_config(case_timeout_s=0.5),
            fault_plan=plan,
        ).run(_cases(network8, tour8, 4))
        assert report.ok
        assert report.supervisor["timeouts"] == 1
        assert report.supervisor["retries"] == 1
        assert [a.kind for a in report.results[2].failure_history] == [
            "timeout"
        ]

    def test_short_hang_within_budget_just_runs(self, network8, tour8):
        """A hang shorter than the case budget delays but never fails."""
        plan = FaultPlan().worker_hang("c0", seconds=0.05)
        report = BatchSynthesizer(
            workers=1,
            config=_fast_config(case_timeout_s=5.0),
            fault_plan=plan,
        ).run(_cases(network8, tour8, 2))
        assert report.ok
        assert report.results[0].attempts == 1
        assert report.supervisor["retries"] == 0

    def test_retry_attempts_emit_span_records(self, network8, tour8):
        plan = FaultPlan().worker_crash("c1")
        report = BatchSynthesizer(
            workers=1,
            config=_fast_config(),
            fault_plan=plan,
            collect_spans=True,
        ).run(_cases(network8, tour8, 2))
        attempts = [
            s
            for s in report.span_records
            if s["name"] == "batch.attempt" and s["case"] == "c1"
        ]
        assert [a["attributes"]["outcome"] for a in attempts] == ["crash", "ok"]
        assert all(a["span_id"] < 0 for a in attempts)


class TestQuarantine:
    def test_poison_case_quarantined_with_history(self, network8, tour8):
        """A case that crashes its worker on every attempt exhausts the
        budget and is parked — the rest of the batch completes."""
        plan = (
            FaultPlan()
            .worker_crash("c1", attempt=1)
            .worker_crash("c1", attempt=2)
            .worker_crash("c1", attempt=3)
        )
        report = BatchSynthesizer(
            workers=1, config=_fast_config(max_attempts=3), fault_plan=plan
        ).run(_cases(network8, tour8, 4))

        assert not report.ok
        assert [r.label for r in report.quarantined] == ["c1"]
        poisoned = report.quarantined[0]
        assert poisoned.attempts == 3
        assert poisoned.error_type == "WorkerCrash"
        assert [a.kind for a in poisoned.failure_history] == ["crash"] * 3
        assert all(r.ok for r in report.results if r.label != "c1")
        assert report.supervisor["quarantined"] == 1
        assert report.supervisor["retries"] == 2
        assert report.metrics.snapshot()["counters"]["batch.quarantined"] == 1

    def test_poison_pill_quarantined_in_pool(self, network8, tour8):
        """A real worker kill (not a simulation): the pill case dies on
        every dispatch, the pool self-heals, the good cases finish."""
        cases = _cases(network8, tour8, 3) + [_pill_case(network8, "pill")]
        report = BatchSynthesizer(
            workers=2, config=_fast_config(max_attempts=2)
        ).run(cases)

        pill = report.results[3]
        assert pill.quarantined
        assert pill.error_type == "WorkerCrash"
        assert pill.attempts == 2
        assert [a.kind for a in pill.failure_history] == ["crash", "crash"]
        assert all(r.ok for r in report.results[:3])
        assert report.supervisor["worker_restarts"] >= 2
        assert report.supervisor["crashes"] >= 2

    def test_deterministic_input_error_is_not_retried(self, network8):
        """Input errors are deterministic — burning the retry budget on
        them would just slow the failure down."""
        bad = BatchCase(
            network=Network.from_positions([Point(0.0, 0.0)] * 4),
            options=SynthesisOptions(ring_method="heuristic"),
            label="bad",
        )
        report = BatchSynthesizer(
            workers=1, config=_fast_config(max_attempts=3)
        ).run([bad])
        assert not report.ok
        assert report.results[0].attempts == 1
        assert report.results[0].quarantined
        assert report.supervisor["retries"] == 0


class TestCircuitBreaker:
    BREAKER = dict(
        max_attempts=1,
        breaker_window=8,
        breaker_threshold=0.6,
        breaker_min_samples=3,
    )

    def test_systemic_failure_fails_fast(self, network8, tour8):
        """Three straight crash-faulted cases latch the breaker; the
        remaining cases are skipped as CircuitOpen, not executed."""
        plan = (
            FaultPlan()
            .worker_crash("c0")
            .worker_crash("c1")
            .worker_crash("c2")
        )
        report = BatchSynthesizer(
            workers=1, config=_fast_config(**self.BREAKER), fault_plan=plan
        ).run(_cases(network8, tour8, 6))

        assert report.circuit_opened
        assert not report.ok
        assert [r.error_type for r in report.results[:3]] == ["WorkerCrash"] * 3
        assert [r.error_type for r in report.results[3:]] == ["CircuitOpen"] * 3
        assert all(not r.quarantined for r in report.results[3:])
        assert report.supervisor["quarantined"] == 3

    def test_on_error_raise_surfaces_circuit_open(self, network8, tour8):
        plan = (
            FaultPlan()
            .worker_crash("c0")
            .worker_crash("c1")
            .worker_crash("c2")
        )
        with pytest.raises(CircuitOpen):
            BatchSynthesizer(
                workers=1,
                on_error="raise",
                config=_fast_config(**self.BREAKER),
                fault_plan=plan,
            ).run(_cases(network8, tour8, 4))

    def test_breaker_latches_once_open(self):
        breaker = CircuitBreaker(window=4, threshold=0.5, min_samples=2)
        breaker.record(True)
        assert not breaker.open
        breaker.record(False)
        assert breaker.open  # 1/2 failures >= 0.5
        for _ in range(10):
            breaker.record(True)
        assert breaker.open  # latched: successes never close it

    def test_breaker_needs_min_samples(self):
        breaker = CircuitBreaker(window=8, threshold=0.5, min_samples=4)
        for _ in range(3):
            breaker.record(False)
        assert not breaker.open
        breaker.record(False)
        assert breaker.open

    def test_backoff_is_seeded_and_capped(self):
        import random

        config = _fast_config(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_cap_s=0.3
        )
        first = [config.backoff_s(n, random.Random(SEED)) for n in (1, 2, 5)]
        second = [config.backoff_s(n, random.Random(SEED)) for n in (1, 2, 5)]
        assert first == second  # same seed, same jitter
        # Cap bounds the delay even for late attempts (jitter adds <=10%).
        assert first[2] <= 0.3 * (1.0 + config.backoff_jitter)
        assert first[0] < first[1]


class TestJournalResume:
    def test_resume_restores_without_recomputing(
        self, tmp_path, network8, tour8, baseline6, monkeypatch
    ):
        path = tmp_path / "batch.jsonl"
        cases = _cases(network8, tour8, 6)
        first = BatchSynthesizer(workers=1).run(cases, journal=path)
        assert first.ok

        def recomputed(index, case, collect_spans):  # pragma: no cover
            raise AssertionError(f"case {index} was recomputed on resume")

        monkeypatch.setattr(supervisor_module, "_execute_case", recomputed)
        second = BatchSynthesizer(workers=1).run(cases, journal=path)
        assert second.ok
        assert second.supervisor["resumed"] == 6
        assert all(r.resumed for r in second.results)
        assert second.metrics.snapshot()["counters"]["batch.resumed"] == 6
        assert _dumps(second) == baseline6

    def test_interrupted_batch_resumes_to_identical_report(
        self, tmp_path, network8, tour8, baseline6, monkeypatch
    ):
        """Kill the run after 3 checkpoints, resume from the journal:
        only the unfinished cases execute and the final designs match
        the uninterrupted baseline byte for byte."""
        path = tmp_path / "batch.jsonl"
        cases = _cases(network8, tour8, 6)

        class _InterruptAfter(BatchJournal):
            def record(self, key, result):
                super().record(key, result)
                if len(self.completed_keys()) >= 3:
                    raise KeyboardInterrupt

        first = BatchSynthesizer(workers=1).run(
            cases, journal=_InterruptAfter(path)
        )
        assert first.interrupted
        assert sum(1 for r in first.results if r.interrupted) == 3
        assert sum(1 for r in first.results if r.ok) == 3

        executed = []
        real = supervisor_module._execute_case

        def counting(index, case, collect_spans, trace=None):
            executed.append(index)
            return real(index, case, collect_spans, trace)

        monkeypatch.setattr(supervisor_module, "_execute_case", counting)
        second = BatchSynthesizer(workers=1).run(cases, journal=path)
        assert second.ok
        assert sorted(executed) == [3, 4, 5]
        assert second.supervisor["resumed"] == 3
        assert [r.resumed for r in second.results] == [True] * 3 + [False] * 3
        assert _dumps(second) == baseline6

    def test_resume_with_different_batch_is_rejected(
        self, tmp_path, network8, tour8
    ):
        path = tmp_path / "batch.jsonl"
        BatchSynthesizer(workers=1).run(
            _cases(network8, tour8, 2), journal=path
        )
        other = _cases(network8, tour8, 3)  # different fingerprint
        with pytest.raises(ConfigurationError, match="different batch"):
            BatchSynthesizer(workers=1).run(other, journal=path)

    def test_journal_tolerates_torn_tail_line(
        self, tmp_path, network8, tour8
    ):
        path = tmp_path / "batch.jsonl"
        cases = _cases(network8, tour8, 2)
        BatchSynthesizer(workers=1).run(cases, journal=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "case", "key": "torn')  # kill -9 artifact
        journal = BatchJournal.load(path)
        assert len(journal.completed_keys()) == 2
        report = BatchSynthesizer(workers=1).run(cases, journal=path)
        assert report.ok
        assert report.supervisor["resumed"] == 2

    def test_journal_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        path.write_text(
            '{"kind": "header", "fingerprint": "f", "version": 1}\n'
            "this is not json\n"
            '{"kind": "case", "key": "k", "payload": ""}\n',
            encoding="utf-8",
        )
        with pytest.raises(ConfigurationError, match="corrupt"):
            BatchJournal.load(path)

    def test_record_is_idempotent_per_key(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.begin("fp", 1)
        result = BatchResult(index=0, label="x", error="boom", error_type="E")
        journal.record("k", result)
        journal.record("k", result)
        lines = (tmp_path / "j.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2  # header + one entry
        restored = journal.restore("k")
        assert restored is not None and restored.resumed
        assert restored.error == "boom"
        assert result_digest(restored) == result_digest(result)

    def test_case_keys_cover_options_and_order(self, network8, tour8):
        a, b = _cases(network8, tour8, 2)
        assert case_key(0, a) == case_key(0, a)  # stable
        assert case_key(0, a) != case_key(0, b)  # options differ
        assert case_key(0, a) != case_key(1, a)  # position differs
        keys = [case_key(0, a), case_key(1, b)]
        assert batch_fingerprint(keys) != batch_fingerprint(keys[::-1])


class TestUnsupervisedBrokenPool:
    def test_broken_pool_degrades_to_case_failures(self, network8):
        """The legacy executor path must never lose the batch to a dead
        worker: broken futures become per-case failures."""
        cases = [_pill_case(network8, "pill0"), _pill_case(network8, "pill1")]
        report = BatchSynthesizer(workers=2, supervised=False).run(cases)
        assert len(report.results) == 2
        assert [r.label for r in report.results] == ["pill0", "pill1"]
        assert not report.ok
        assert all(
            r.error_type == "BrokenProcessPool" for r in report.results
        )
