"""Tests for the cross-run history ledger (repro.obs.history).

The ledger is the substrate ``xring regress`` / ``xring report`` stand
on, so these tests pin down its durability contract: content
fingerprints are timestamp-free (identical runs share them), appends
are atomic full rewrites, a torn tail line from a foreign writer is
dropped with a warning while torn *interior* lines still raise, and
run-id lookup accepts unique prefixes but rejects ambiguous ones.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core import SynthesisOptions
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    RunLedger,
    RunRecord,
    environment_fingerprint,
    options_fingerprint,
    quality_from_evaluation,
    stage_latency_from_elapsed,
)
from repro.obs.history import (
    LEDGER_VERSION,
    RUN_KINDS,
    json_safe,
    stage_latency_from_snapshot,
)


def _registry() -> MetricsRegistry:
    """A registry shaped like a real synthesis run's."""
    reg = MetricsRegistry()
    reg.counter("milp.simplex.pivots").inc(42)
    reg.counter("milp.bb.nodes").inc(7)
    for elapsed in (0.01, 0.02, 0.03):
        reg.histogram("stage.ring.latency_s", LATENCY_BUCKETS).observe(elapsed)
    reg.gauge("deadline.ring.elapsed_s").set(0.03)
    return reg


def _record(label: str = "r", wall_s: float = 1.0, **extra) -> RunRecord:
    return RunRecord.build(
        "synth",
        label,
        metrics=_registry().snapshot(),
        wall_s=wall_s,
        extra=extra or None,
    )


class TestRunRecord:
    def test_build_derives_stages_counters_and_env(self):
        record = _record()
        assert record.kind == "synth"
        assert record.solver == {"simplex_pivots": 42, "bb_nodes": 7}
        assert record.env == environment_fingerprint()
        ring = record.stage_latency["ring"]
        assert ring["count"] == 3
        assert ring["p50"] <= ring["p90"] <= ring["p99"] <= ring["max"]
        assert record.version == LEDGER_VERSION

    def test_fingerprint_is_content_based_not_time_based(self):
        a, b = _record(), _record()
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != _record(wall_s=2.0).fingerprint
        assert a.run_id.startswith("synth-")
        assert a.run_id.endswith(a.fingerprint[:10])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            RunRecord.build("nonsense", "x")
        for kind in RUN_KINDS:
            RunRecord.build(kind, "x")  # all declared kinds accepted

    def test_round_trips_through_dict(self):
        record = _record(note="hello")
        clone = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone.to_dict() == record.to_dict()

    def test_deadline_gauges_are_the_fallback(self):
        reg = MetricsRegistry()
        reg.gauge("deadline.ring.elapsed_s").set(0.5)
        stages = stage_latency_from_snapshot(reg.snapshot())
        assert stages == {
            "ring": {
                "count": 1,
                "mean": 0.5,
                "p50": 0.5,
                "p90": 0.5,
                "p99": 0.5,
                "max": 0.5,
                "sum": 0.5,
            }
        }

    def test_stage_latency_from_elapsed(self):
        stages = stage_latency_from_elapsed({"ring": 1.5})
        assert stages["ring"]["count"] == 1
        assert stages["ring"]["p99"] == 1.5

    def test_json_safe_strips_nonfinite(self):
        assert json_safe({"a": math.nan, "b": (1, math.inf)}) == {
            "a": None,
            "b": [1, None],
        }


class TestOptionsFingerprint:
    def test_stable_and_sensitive(self):
        a = SynthesisOptions(wl_budget=8)
        b = SynthesisOptions(wl_budget=8)
        c = SynthesisOptions(wl_budget=9)
        assert options_fingerprint(a) == options_fingerprint(b)
        assert options_fingerprint(a) != options_fingerprint(c)
        assert options_fingerprint(None) == ""

    def test_dicts_supported(self):
        assert options_fingerprint({"x": 1}) == options_fingerprint({"x": 1})


class TestRunLedger:
    def test_append_and_query(self, tmp_path):
        ledger = RunLedger(tmp_path / "hist")
        first = ledger.append(_record("a"))
        ledger.append(_record("b", wall_s=2.0))
        assert [r.label for r in ledger.entries()] == ["a", "b"]
        assert [r.label for r in ledger.entries(label="b")] == ["b"]
        assert [r.label for r in ledger.last(1)] == ["b"]
        assert ledger.entries(kind="bench") == []
        got = ledger.get(first.run_id)
        assert got is not None and got.fingerprint == first.fingerprint

    def test_get_accepts_unique_prefix_rejects_ambiguous(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.append(_record("a"))
        ledger.append(_record("b", wall_s=2.0))
        assert ledger.get(first.run_id[:-1]).run_id == first.run_id
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.get("synth-")
        assert ledger.get("no-such-run") is None

    def test_torn_tail_is_dropped_torn_middle_raises(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record("a"))
        ledger.append(_record("b", wall_s=2.0))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "run_id": "torn')  # no newline
        assert [r.label for r in ledger.entries()] == ["a", "b"]

        torn_middle = ledger.path.read_text(encoding="utf-8")
        ledger.path.write_text(
            '{"broken\n' + torn_middle.split("{", 1)[1], encoding="utf-8"
        )
        with pytest.raises(json.JSONDecodeError):
            ledger.entries()

    def test_missing_ledger_is_empty(self, tmp_path):
        assert RunLedger(tmp_path / "nowhere").entries() == []

    def test_appends_survive_as_one_object_per_line(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i in range(3):
            ledger.append(_record(f"r{i}", wall_s=float(i + 1)))
        lines = ledger.path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)


class TestQualityExtraction:
    def test_quality_from_evaluation(self, network8):
        from repro.analysis import evaluate_circuit
        from repro.core import XRingSynthesizer
        from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES

        design = XRingSynthesizer(
            network8, SynthesisOptions(ring_method="heuristic")
        ).run()
        circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
        evaluation = evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK)
        quality = quality_from_evaluation(evaluation)
        assert quality["wl_count"] == evaluation.wl_count
        assert quality["il_w"] == pytest.approx(evaluation.il_w)
        assert 0.0 <= quality["noise_free_fraction"] <= 1.0
        json.dumps(quality)  # fully JSON-safe
