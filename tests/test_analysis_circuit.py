"""Unit tests for the photonic circuit model (arcs, wrap, validation)."""

import pytest

from repro.analysis import DropFilter, Leg, PhotonicCircuit, SignalSpec


def make_circuit():
    circuit = PhotonicCircuit()
    guide = circuit.add_waveguide(10.0, closed=False)
    return circuit, guide


class TestWaveguideArcs:
    def test_open_arc_length(self):
        circuit, guide = make_circuit()
        assert guide.arc_length(2.0, 7.5) == pytest.approx(5.5)

    def test_open_backwards_raises(self):
        circuit, guide = make_circuit()
        with pytest.raises(ValueError):
            guide.arc_length(7.0, 2.0)

    def test_closed_wrap_length(self):
        circuit = PhotonicCircuit()
        ring = circuit.add_waveguide(10.0, closed=True)
        assert ring.arc_length(7.0, 3.0) == pytest.approx(6.0)

    def test_filters_between_strict_interior(self):
        circuit, guide = make_circuit()
        for pos in (2.0, 5.0, 8.0):
            guide.add_drop_filter(DropFilter(pos, 0, signal_id=int(pos), node=0))
        guide.finalize()
        inside = guide.filters_between(2.0, 8.0)
        assert [f.position for f in inside] == [5.0]

    def test_filters_between_wraps_on_closed(self):
        circuit = PhotonicCircuit()
        ring = circuit.add_waveguide(10.0, closed=True)
        for pos in (1.0, 4.0, 9.0):
            ring.add_drop_filter(DropFilter(pos, 0, signal_id=int(pos), node=0))
        ring.finalize()
        inside = ring.filters_between(8.0, 2.0)
        assert [f.position for f in inside] == [9.0, 1.0]

    def test_element_position_validated(self):
        circuit, guide = make_circuit()
        guide.add_drop_filter(DropFilter(12.0, 0, signal_id=0, node=0))
        with pytest.raises(ValueError):
            guide.finalize()

    def test_closed_guide_rejects_position_at_length(self):
        circuit = PhotonicCircuit()
        ring = circuit.add_waveguide(10.0, closed=True)
        ring.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=0))
        with pytest.raises(ValueError):
            ring.finalize()


class TestCircuitConstruction:
    def test_crossing_registered_on_both_guides(self):
        circuit = PhotonicCircuit()
        a = circuit.add_waveguide(10.0)
        b = circuit.add_waveguide(10.0)
        cid = circuit.add_crossing(a.wid, 5.0, b.wid, 4.0)
        assert len(a.crossings) == 1 and len(b.crossings) == 1
        assert a.crossings[0].crossing_id == cid
        assert a.crossings[0].other_wid == b.wid

    def test_pdn_crossing_adds_injection(self):
        circuit = PhotonicCircuit()
        a = circuit.add_waveguide(10.0)
        circuit.add_pdn_crossing(a.wid, 3.0, rel_db=-45.0)
        assert len(circuit.external_injections) == 1
        assert a.crossings[0].other_wid == -1

    def test_signal_requires_terminal_filter(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 10.0)]))
        with pytest.raises(ValueError):
            circuit.finalize()

    def test_duplicate_signal_ids_rejected(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        guide.add_drop_filter(DropFilter(10.0, 0, signal_id=0, node=1))
        circuit.add_signal(SignalSpec(0, 0, 1, 0, [Leg(guide.wid, 0.0, 10.0)]))
        circuit.add_signal(SignalSpec(0, 1, 0, 0, [Leg(guide.wid, 0.0, 10.0)]))
        with pytest.raises(ValueError):
            circuit.finalize()

    def test_wavelength_count(self):
        circuit = PhotonicCircuit()
        guide = circuit.add_waveguide(10.0)
        guide.add_drop_filter(DropFilter(10.0, 2, signal_id=0, node=1))
        guide.add_drop_filter(DropFilter(8.0, 5, signal_id=1, node=2))
        circuit.add_signal(SignalSpec(0, 0, 1, 2, [Leg(guide.wid, 0.0, 10.0)]))
        circuit.add_signal(SignalSpec(1, 0, 2, 5, [Leg(guide.wid, 0.0, 8.0)]))
        circuit.finalize()
        assert circuit.used_wavelengths() == [2, 5]
        assert circuit.wavelength_count == 2

    def test_signal_spec_validation(self):
        with pytest.raises(ValueError):
            SignalSpec(0, 0, 1, 0, [])
        with pytest.raises(ValueError):
            SignalSpec(0, 0, 1, -1, [Leg(0, 0.0, 1.0)])
        with pytest.raises(ValueError):
            SignalSpec(0, 0, 1, 0, [Leg(0, 0.0, 1.0)], feed_loss_db=-1.0)

    def test_waveguide_length_positive(self):
        with pytest.raises(ValueError):
            PhotonicCircuit().add_waveguide(0.0)
