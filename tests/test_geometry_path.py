"""Unit and property tests for rectilinear paths and L-routes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, RectilinearPath, distance_along, l_route, l_routes

coords = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestRectilinearPath:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            RectilinearPath([Point(0, 0)])

    def test_drops_consecutive_duplicates(self):
        path = RectilinearPath([Point(0, 0), Point(0, 0), Point(2, 0)])
        assert len(path.points) == 2

    def test_rejects_diagonal_leg(self):
        with pytest.raises(ValueError):
            RectilinearPath([Point(0, 0), Point(1, 1)])

    def test_length_and_bends(self):
        path = RectilinearPath([Point(0, 0), Point(3, 0), Point(3, 2), Point(5, 2)])
        assert path.length == 7.0
        assert path.bend_count == 2

    def test_straight_path_no_bends(self):
        path = RectilinearPath([Point(0, 0), Point(2, 0), Point(5, 0)])
        assert path.bend_count == 0

    def test_contains_point(self):
        path = RectilinearPath([Point(0, 0), Point(3, 0), Point(3, 2)])
        assert path.contains_point(Point(3, 1))
        assert not path.contains_point(Point(1, 1))

    def test_reversed(self):
        path = RectilinearPath([Point(0, 0), Point(3, 0), Point(3, 2)])
        rev = path.reversed()
        assert rev.start == path.end and rev.end == path.start
        assert rev.length == path.length

    def test_concat(self):
        p1 = RectilinearPath([Point(0, 0), Point(2, 0)])
        p2 = RectilinearPath([Point(2, 0), Point(2, 3)])
        joined = p1.concat(p2)
        assert joined.length == 5.0
        assert joined.start == Point(0, 0) and joined.end == Point(2, 3)

    def test_concat_mismatch(self):
        p1 = RectilinearPath([Point(0, 0), Point(2, 0)])
        p2 = RectilinearPath([Point(3, 0), Point(3, 3)])
        with pytest.raises(ValueError):
            p1.concat(p2)


class TestLRoutes:
    def test_two_routes_for_generic_pair(self):
        routes = l_routes(Point(0, 0), Point(2, 3))
        assert len(routes) == 2

    def test_single_route_for_aligned_pair(self):
        assert len(l_routes(Point(0, 0), Point(0, 5))) == 1
        assert len(l_routes(Point(0, 2), Point(7, 2))) == 1

    def test_vertical_first_corner(self):
        route = l_route(Point(0, 0), Point(2, 3), vertical_first=True)
        assert route.points[1] == Point(0, 3)

    def test_horizontal_first_corner(self):
        route = l_route(Point(0, 0), Point(2, 3), vertical_first=False)
        assert route.points[1] == Point(2, 0)

    @given(points, points)
    def test_l_route_length_is_manhattan(self, a, b):
        if a.almost_equals(b):
            return
        for route in l_routes(a, b):
            assert route.length == pytest.approx(a.manhattan(b), abs=1e-6)
            assert route.start.almost_equals(a)
            assert route.end.almost_equals(b)

    @given(points, points)
    def test_l_route_bend_count(self, a, b):
        if a.almost_equals(b):
            return
        for route in l_routes(a, b):
            assert route.bend_count <= 1


class TestDistanceAlong:
    def test_at_vertices(self):
        path = RectilinearPath([Point(0, 0), Point(3, 0), Point(3, 2)])
        assert distance_along(path, Point(0, 0)) == 0.0
        assert distance_along(path, Point(3, 0)) == 3.0
        assert distance_along(path, Point(3, 2)) == 5.0

    def test_interior(self):
        path = RectilinearPath([Point(0, 0), Point(3, 0), Point(3, 2)])
        assert distance_along(path, Point(3, 1)) == 4.0

    def test_off_path_raises(self):
        path = RectilinearPath([Point(0, 0), Point(3, 0)])
        with pytest.raises(ValueError):
            distance_along(path, Point(1, 1))
