"""Differential tests: two implementations of the same contract agree.

Two axes are compared:

- **Exact vs heuristic Step 1** — on small floorplans (N <= 6, where
  the MILP is fast and provably optimal) the heuristic tour must stay
  within a fixed optimality bound, and the MILP must never be worse
  than the heuristic (it is exact: anything the heuristic finds is a
  feasible incumbent).
- **Parallel vs sequential batch execution** — the process-pool path
  must be an implementation detail: ``workers=4`` produces designs
  whose structural dumps are byte-identical to the in-process
  ``workers=1`` path on the same cases.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.heuristic_ring import construct_ring_tour_heuristic
from repro.core.ring import construct_ring_tour
from repro.core.synthesizer import SynthesisOptions
from repro.geometry import Point
from repro.network import Network
from repro.network.placement import psion_placement
from repro.parallel import BatchCase, BatchSynthesizer, clear_caches

#: Heuristic optimality bound on tiny instances.  The benchmark suite
#: tracks 15% at the paper's sizes; on 4-6 node lattice floorplans the
#: granularity is coarser — one extra lattice hop after conflict
#: repair is already +20% — so the bound here is a lattice step wider.
HEURISTIC_BOUND = 1.25

_EPS = 1e-9


def _tiny_floorplans(count: int = 10, seed: int = 424242) -> list[list[Point]]:
    rng = random.Random(seed)
    plans = []
    for _ in range(count):
        n = rng.randint(4, 6)
        cells = rng.sample(
            [(c, r) for c in range(4) for r in range(4)], n
        )
        plans.append([Point(c * 0.4, r * 0.4) for c, r in cells])
    return plans


@pytest.mark.parametrize("case", range(10))
def test_milp_never_worse_than_heuristic(case):
    points = _tiny_floorplans()[case]
    exact = construct_ring_tour(points)
    heuristic = construct_ring_tour_heuristic(points)
    assert not exact.timed_out
    assert exact.length_mm <= heuristic.length_mm + _EPS
    assert heuristic.length_mm <= HEURISTIC_BOUND * exact.length_mm + _EPS


def _batch_cases() -> list[BatchCase]:
    """A representative slice of the experiment workload.

    Two floorplans, both ring methods, feature ablations and a #wl
    sweep — enough option diversity that any worker-dependent state
    would show up in the structural dumps.
    """
    cases = []
    for num_nodes in (8, 16):
        points, die = psion_placement(num_nodes)
        network = Network.from_positions(points, die=die)
        cases.extend(
            [
                BatchCase(
                    network=network,
                    options=SynthesisOptions(label=f"xring{num_nodes}"),
                ),
                BatchCase(
                    network=network,
                    options=SynthesisOptions(
                        wl_budget=num_nodes // 2,
                        ring_method="heuristic",
                        label=f"xring{num_nodes}/half-budget",
                    ),
                ),
                BatchCase(
                    network=network,
                    options=SynthesisOptions(
                        enable_shortcuts=False,
                        pdn_mode="external",
                        enable_openings=False,
                        label=f"xring{num_nodes}/bare",
                    ),
                ),
            ]
        )
    return cases


def _dumps(report) -> list[str]:
    assert report.ok, [r.error for r in report.errors]
    return [
        json.dumps(design.to_dict(), sort_keys=True)
        for design in report.designs
    ]


def test_parallel_batch_matches_sequential():
    clear_caches()
    sequential = _dumps(BatchSynthesizer(workers=1).run(_batch_cases()))
    clear_caches()
    parallel = _dumps(BatchSynthesizer(workers=4).run(_batch_cases()))
    assert parallel == sequential


def test_parallel_batch_matches_sequential_without_tour_sharing():
    clear_caches()
    sequential = _dumps(
        BatchSynthesizer(workers=1, share_tours=False).run(_batch_cases())
    )
    clear_caches()
    parallel = _dumps(
        BatchSynthesizer(workers=4, share_tours=False).run(_batch_cases())
    )
    assert parallel == sequential
