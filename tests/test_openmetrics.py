"""Tests for the OpenMetrics text exposition (repro.obs.openmetrics).

The exposition has to be *strictly* parseable — a scraper has no
tolerance for almost-right lines — so the central test validates every
emitted line against the OpenMetrics line grammar, and the rest pin
the semantic rules: counters get ``_total``, histogram buckets are
cumulative with a mandatory ``+Inf`` equal to ``_count``, names are
sanitized into the legal charset, and the output ends with ``# EOF``.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs import MetricsRegistry, sanitize_metric_name, to_openmetrics

#: One metric line: name, optional labels, one space, a number.
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\")*\})?"  # labels
    r" (NaN|[+-]Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)
_COMMENT_LINE = re.compile(r"^# (TYPE|HELP|UNIT) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("milp.simplex.pivots").inc(42)
    reg.gauge("deadline.ring.elapsed_s").set(1.25)
    hist = reg.histogram("stage.ring.latency_s", (0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):  # last lands in overflow
        hist.observe(value)
    return reg


class TestLineFormat:
    def test_every_line_matches_the_grammar(self):
        text = to_openmetrics(_registry().snapshot())
        lines = text.splitlines()
        assert lines, "exposition must not be empty"
        assert lines[-1] == "# EOF"
        for line in lines[:-1]:
            assert _METRIC_LINE.match(line) or _COMMENT_LINE.match(line), (
                f"line violates the OpenMetrics grammar: {line!r}"
            )

    def test_ends_with_eof_newline(self):
        assert to_openmetrics(_registry().snapshot()).endswith("# EOF\n")
        assert to_openmetrics(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ).endswith("# EOF\n")

    def test_type_line_precedes_every_family(self):
        text = to_openmetrics(_registry().snapshot())
        lines = text.splitlines()
        seen_types = {}
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, family_type = line.split(" ")
                seen_types[name] = family_type
        assert seen_types["xring_milp_simplex_pivots"] == "counter"
        assert seen_types["xring_deadline_ring_elapsed_s"] == "gauge"
        assert seen_types["xring_stage_ring_latency_s"] == "histogram"


class TestSemantics:
    def test_counter_gets_total_suffix(self):
        text = to_openmetrics(_registry().snapshot())
        assert "xring_milp_simplex_pivots_total 42" in text.splitlines()

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_openmetrics(_registry().snapshot())
        buckets = {
            m.group(1): int(m.group(2))
            for m in re.finditer(
                r'xring_stage_ring_latency_s_bucket\{le="([^"]+)"\} (\d+)',
                text,
            )
        }
        assert buckets == {"0.1": 1, "1": 2, "10": 3, "+Inf": 4}
        assert "xring_stage_ring_latency_s_count 4" in text
        # cumulative: monotone nondecreasing, +Inf == _count
        values = [buckets["0.1"], buckets["1"], buckets["10"], buckets["+Inf"]]
        assert values == sorted(values)

    def test_gauge_value_verbatim(self):
        text = to_openmetrics(_registry().snapshot())
        assert "xring_deadline_ring_elapsed_s 1.25" in text.splitlines()

    def test_nonfinite_values_use_openmetrics_spellings(self):
        reg = MetricsRegistry()
        reg.gauge("a").set(math.nan)
        reg.gauge("b").set(math.inf)
        reg.gauge("c").set(-math.inf)
        lines = to_openmetrics(reg.snapshot()).splitlines()
        assert "xring_a NaN" in lines
        assert "xring_b +Inf" in lines
        assert "xring_c -Inf" in lines

    def test_empty_histogram_still_exposes_count_and_sum(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0,))
        text = to_openmetrics(reg.snapshot())
        assert "xring_h_count 0" in text
        assert "xring_h_sum 0" in text
        assert 'xring_h_bucket{le="+Inf"} 0' in text


class TestNameSanitization:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("milp.simplex.pivots") == (
            "xring_milp_simplex_pivots"
        )
        assert sanitize_metric_name("a-b c") == "xring_a_b_c"

    def test_leading_digit_is_guarded(self):
        name = sanitize_metric_name("2fast", prefix="")
        assert re.match(r"^[a-zA-Z_:]", name)

    def test_sanitized_names_are_always_legal(self):
        for raw in ("", "---", "über.metric", "9lives", "ok_name"):
            name = sanitize_metric_name(raw)
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), raw

    def test_collision_free_export_of_hostile_names(self):
        reg = MetricsRegistry()
        reg.counter("weird name!").inc(1)
        reg.gauge("9lives").set(2.0)
        text = to_openmetrics(reg.snapshot())
        for line in text.splitlines()[:-1]:
            assert _METRIC_LINE.match(line) or _COMMENT_LINE.match(line), line


class TestPrefix:
    def test_custom_prefix(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        text = to_openmetrics(reg.snapshot(), prefix="repro")
        assert "repro_n_total 1" in text

    def test_bad_prefix_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        with pytest.raises(ValueError):
            to_openmetrics(reg.snapshot(), prefix="9bad")


# ---------------------------------------------------------------------------
# federation: parse + merge (what GET /federate serves)
# ---------------------------------------------------------------------------
def _exposition(pivots=42, latencies=(0.05, 0.5, 5.0)) -> str:
    reg = MetricsRegistry()
    reg.counter("milp.simplex.pivots").inc(pivots)
    reg.gauge("queue.depth").set(float(pivots))
    hist = reg.histogram("stage.ring.latency_s", (0.1, 1.0, 10.0))
    for value in latencies:
        hist.observe(value)
    return to_openmetrics(reg.snapshot())


class TestParseExposition:
    def test_roundtrip_through_parse(self):
        from repro.obs import parse_exposition

        snapshot = parse_exposition(_exposition())
        assert snapshot["counters"]["xring_milp_simplex_pivots"] == 42
        assert snapshot["gauges"]["xring_queue_depth"] == 42.0
        hist = snapshot["histograms"]["xring_stage_ring_latency_s"]
        assert hist["total"] == 3
        assert hist["counts"] == [1, 1, 1, 0]  # de-cumulated + overflow
        assert hist["sum"] == pytest.approx(5.55)

    def test_count_and_sum_never_leak_as_gauges(self):
        from repro.obs import parse_exposition

        snapshot = parse_exposition(_exposition())
        for name in snapshot["gauges"]:
            assert not name.endswith(("_count", "_sum", "_total"))


class TestMergeExpositions:
    """The /federate contract: overlapping families from N nodes merge
    into one strictly-valid exposition — counters sum, histogram
    buckets add bucket-wise, and the comment structure stays legal
    (one # TYPE per family, exactly one # EOF)."""

    def test_overlapping_counters_sum(self):
        from repro.obs import merge_expositions

        merged = merge_expositions([_exposition(10), _exposition(32)])
        assert "xring_milp_simplex_pivots_total 42" in merged

    def test_overlapping_histograms_merge_bucketwise(self):
        from repro.obs import merge_expositions

        merged = merge_expositions(
            [_exposition(latencies=(0.05,)), _exposition(latencies=(5.0, 50.0))]
        )
        assert 'xring_stage_ring_latency_s_bucket{le="0.1"} 1' in merged
        assert 'xring_stage_ring_latency_s_bucket{le="+Inf"} 3' in merged
        assert "xring_stage_ring_latency_s_count 3" in merged
        assert "xring_stage_ring_latency_s_sum 55.05" in merged

    def test_gauges_are_last_wins(self):
        from repro.obs import merge_expositions

        merged = merge_expositions([_exposition(10), _exposition(99)])
        assert "xring_queue_depth 99" in merged

    def test_merged_output_stays_strictly_valid(self):
        from repro.obs import merge_expositions

        merged = merge_expositions([_exposition(1), _exposition(2)])
        lines = merged.splitlines()
        assert merged.count("# EOF") == 1 and lines[-1] == "# EOF"
        for line in lines[:-1]:
            assert _METRIC_LINE.match(line) or _COMMENT_LINE.match(line), line
        # one # TYPE per family, no duplicates
        types = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert len(types) == len(set(types))

    def test_mismatched_histogram_edges_degrade_to_mean(self):
        from repro.obs import merge_expositions, parse_exposition

        reg = MetricsRegistry()
        other = reg.histogram("stage.ring.latency_s", (0.25, 2.5))
        other.observe(2.0)
        merged = merge_expositions(
            [_exposition(latencies=(0.5,)), to_openmetrics(reg.snapshot())]
        )
        snapshot = parse_exposition(merged)
        hist = snapshot["histograms"]["xring_stage_ring_latency_s"]
        assert hist["total"] == 2  # both observations survive
        assert hist["sum"] == pytest.approx(2.5)

    def test_cross_type_conflict_first_seen_wins(self):
        from repro.obs import merge_expositions

        reg = MetricsRegistry()
        reg.gauge("milp.simplex.pivots").set(7.0)
        merged = merge_expositions(
            [_exposition(10), to_openmetrics(reg.snapshot())]
        )
        assert "xring_milp_simplex_pivots_total 10" in merged
        assert "# TYPE xring_milp_simplex_pivots counter" in merged

    def test_single_exposition_is_a_fixpoint(self):
        from repro.obs import merge_expositions

        once = merge_expositions([_exposition()])
        twice = merge_expositions([once])
        assert once == twice
