"""CLI tests for the durable-cache surface: ``xring cache`` and the
``--cache-dir`` flag, driven in-process through :func:`repro.cli.main`.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.parallel import clear_caches
from repro.parallel.store import ENTRY_SUFFIX
from repro.robustness import ConfigurationError
from repro.service import ServiceConfig


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_caches()
    yield
    clear_caches()


def _write_cases(tmp_path, n=1):
    path = tmp_path / "cases.json"
    path.write_text(
        json.dumps(
            [
                {"nodes": 8, "ring_method": "heuristic", "label": f"c{i}"}
                for i in range(n)
            ]
        )
    )
    return str(path)


def _entries(root):
    return [
        p
        for p in root.rglob(f"*{ENTRY_SUFFIX}")
        if "quarantine" not in p.parts
    ]


class TestCacheCommand:
    def test_requires_exactly_one_backend(self, capsys):
        assert main(["cache", "stats"]) == 2
        assert (
            main(["cache", "stats", "--dir", "x", "--nodes", "h:1"]) == 2
        )
        assert "exactly one" in capsys.readouterr().err

    def test_stats_on_empty_store(self, tmp_path, capsys):
        assert main(["cache", "stats", "--dir", str(tmp_path / "l2")]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0
        assert not stats["disabled"]

    def test_batch_cache_dir_round_trip(self, tmp_path, capsys):
        cases = _write_cases(tmp_path)
        store = tmp_path / "l2"
        assert main(["batch", cases, "--cache-dir", str(store)]) == 0
        assert len(_entries(store)) >= 1
        capsys.readouterr()

        clear_caches()  # simulated restart
        assert (
            main(["batch", cases, "--cache-dir", str(store), "--progress"])
            == 0
        )
        err = capsys.readouterr().err
        events = [
            json.loads(line)
            for line in err.splitlines()
            if line.startswith("{")
        ]
        starts = [e for e in events if e.get("event") == "batch_start"]
        assert starts and starts[0]["cached"] == 1
        assert any(e.get("event") == "case_cached" for e in events)

    def test_scrub_exits_1_on_corruption(self, tmp_path, capsys):
        cases = _write_cases(tmp_path)
        store = tmp_path / "l2"
        assert main(["batch", cases, "--cache-dir", str(store)]) == 0
        assert main(["cache", "scrub", "--dir", str(store)]) == 0
        capsys.readouterr()

        entry = _entries(store)[0]
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF
        entry.write_bytes(bytes(blob))
        assert main(["cache", "scrub", "--dir", str(store)]) == 1
        out = capsys.readouterr()
        assert json.loads(out.out)["quarantined"] == 1
        assert "quarantined" in out.err

    def test_gc_bounds_the_store(self, tmp_path, capsys):
        cases = _write_cases(tmp_path)
        store = tmp_path / "l2"
        assert main(["batch", cases, "--cache-dir", str(store)]) == 0
        capsys.readouterr()
        assert (
            main(["cache", "gc", "--dir", str(store), "--max-bytes", "0"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] >= 1
        assert report["bytes"] == 0
        assert _entries(store) == []


class TestConfigValidation:
    def test_service_config_rejects_both_backends(self, tmp_path):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            ServiceConfig(
                store_dir=tmp_path,
                cache_dir=str(tmp_path / "l2"),
                cache_nodes=("h:1",),
            )
        with pytest.raises(ConfigurationError, match="cache_replication"):
            ServiceConfig(store_dir=tmp_path, cache_replication=0)

    def test_configure_l2_rejects_both_backends(self, tmp_path):
        from repro.parallel import configure_l2

        with pytest.raises(ValueError, match="mutually exclusive"):
            configure_l2(str(tmp_path / "l2"), ("h:1",))
