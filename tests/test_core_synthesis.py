"""Integration tests: full synthesis, lowering, and design invariants."""

import math

import pytest

from repro.analysis import evaluate_circuit, signal_loss
from repro.core import SynthesisOptions, XRingSynthesizer, synthesize
from repro.network import Network
from repro.network.placement import psion_placement
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES


@pytest.fixture(scope="module")
def design16():
    points, die = psion_placement(16)
    network = Network.from_positions(points, die=die)
    return synthesize(network, wl_budget=16)


@pytest.fixture(scope="module")
def circuit16(design16):
    return design16.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)


class TestSynthesizedDesign:
    def test_all_demands_covered(self, design16):
        served = set(design16.mapping.assignments) | set(
            design16.shortcut_plan.served
        )
        assert served == set(design16.network.demands())

    def test_circuit_has_all_signals(self, circuit16):
        assert len(circuit16.signals) == 240

    def test_every_signal_has_positive_loss(self, circuit16):
        for signal in circuit16.signals:
            breakdown = signal_loss(circuit16, signal, ORING_LOSSES)
            assert breakdown.il > 0
            assert breakdown.length_mm >= 0

    def test_ring_signals_suffer_no_crossings(self, circuit16, design16):
        # XRing's headline structural property: zero crossings on data
        # paths (internal PDN, crossing-budgeted shortcuts).
        evaluation = evaluate_circuit(circuit16, ORING_LOSSES, NIKDAST_CROSSTALK)
        assert evaluation.worst_crossings == 0

    def test_high_noise_free_fraction(self, circuit16):
        # The paper's claim: > 98% of signals suffer no first-order noise.
        evaluation = evaluate_circuit(circuit16, ORING_LOSSES, NIKDAST_CROSSTALK)
        assert evaluation.noise_free_fraction > 0.98

    def test_feed_losses_attached(self, circuit16):
        assert all(s.feed_loss_db > 0 for s in circuit16.signals)

    def test_power_positive(self, circuit16):
        evaluation = evaluate_circuit(circuit16, ORING_LOSSES, NIKDAST_CROSSTALK)
        assert evaluation.power_w > 0

    def test_wavelength_count_within_budget_plus_shortcuts(self, design16):
        assert design16.wavelength_count <= 16

    def test_synthesis_time_recorded(self, design16):
        assert design16.synthesis_time_s > 0

    def test_convenience_metrics(self, design16):
        assert design16.ring_count == len(design16.mapping.rings)
        assert design16.shortcut_count == len(design16.shortcut_plan.shortcuts)


class TestOptionVariants:
    @pytest.fixture(scope="class")
    def network8(self):
        points, die = psion_placement(8)
        return Network.from_positions(points, die=die)

    def test_no_pdn(self, network8):
        design = synthesize(network8, wl_budget=8, pdn_mode=None)
        assert design.pdn is None
        circuit = design.to_circuit(ORING_LOSSES)
        assert all(s.feed_loss_db == 0 for s in circuit.signals)

    def test_no_shortcuts(self, network8):
        design = synthesize(network8, wl_budget=8, enable_shortcuts=False)
        assert design.shortcut_count == 0
        assert len(design.mapping.assignments) == 56

    def test_closed_rings(self, network8):
        design = synthesize(
            network8, wl_budget=8, enable_openings=False, pdn_mode="external"
        )
        assert all(r.opening_node is None for r in design.mapping.rings)
        circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
        evaluation = evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK)
        # External PDN over closed rings causes crossings and noise.
        assert evaluation.noisy_signals > 0

    def test_tour_reuse(self, network8):
        synth = XRingSynthesizer(network8, SynthesisOptions(wl_budget=8))
        design1 = synth.run()
        design2 = XRingSynthesizer(network8, SynthesisOptions(wl_budget=8)).run(
            tour=design1.tour
        )
        assert design2.tour is design1.tour

    def test_invalid_pdn_mode(self, network8):
        with pytest.raises(ValueError):
            synthesize(network8, wl_budget=8, pdn_mode="bogus")
