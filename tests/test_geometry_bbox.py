"""Unit tests for bounding boxes."""

import pytest

from repro.geometry import BBox, Point


class TestBBox:
    def test_of_points(self):
        box = BBox.of_points([Point(1, 2), Point(4, 0), Point(3, 5)])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (1, 0, 4, 5)

    def test_of_points_empty(self):
        with pytest.raises(ValueError):
            BBox.of_points([])

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            BBox(2, 0, 1, 5)

    def test_dimensions(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4 and box.height == 3
        assert box.half_perimeter == 7
        assert box.center == Point(2, 1.5)

    def test_contains(self):
        box = BBox(0, 0, 4, 3)
        assert box.contains(Point(2, 2))
        assert box.contains(Point(0, 0))
        assert not box.contains(Point(5, 1))

    def test_inflate(self):
        box = BBox(1, 1, 2, 2).inflate(0.5)
        assert (box.xmin, box.ymax) == (0.5, 2.5)

    def test_union(self):
        a = BBox(0, 0, 1, 1)
        b = BBox(2, -1, 3, 0.5)
        u = a.union(b)
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, -1, 3, 1)

    def test_degenerate_box_allowed(self):
        box = BBox.of_points([Point(1, 1)])
        assert box.width == 0 and box.height == 0
