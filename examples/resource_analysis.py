"""Resource and spectrum analysis of a synthesized router.

Beyond the paper's worst-case tables, a designer adopting XRing wants
to know what the router *costs* (waveguide length, MRRs, splitters,
footprint) and how balanced the wavelength channels are (an unbalanced
assignment wastes laser power on cold channels).  This example
synthesizes a 16-node XRing, prints the resource bill, the
per-wavelength spectrum, and writes a machine-readable JSON report.

Run with::

    python examples/resource_analysis.py
"""

from pathlib import Path

from repro import synthesize_and_evaluate
from repro.analysis import spectrum_report, resource_report
from repro.io import save_report
from repro.photonics import ORING_LOSSES
from repro.viz import bar_chart


def main() -> None:
    design, evaluation = synthesize_and_evaluate(num_nodes=16)
    circuit = design.to_circuit(ORING_LOSSES)

    resources = resource_report(design)
    print("Resource bill (16-node XRing)")
    print(f"  data waveguide : {resources.waveguide_mm:.1f} mm")
    print(f"  PDN waveguide  : {resources.pdn_waveguide_mm:.1f} mm")
    print(f"  ring instances : {resources.ring_count}")
    print(f"  shortcuts      : {resources.shortcut_count}")
    print(f"  MRRs           : {resources.mrr_count}")
    print(f"  modulators     : {resources.modulator_count}")
    print(f"  splitters      : {resources.splitter_count}")
    print(f"  crossings      : {resources.crossing_count}")
    print(f"  footprint      : {resources.footprint_mm2:.1f} mm^2")

    spectrum = spectrum_report(circuit, ORING_LOSSES, evaluation)
    print("\nPer-wavelength laser power (the hottest channel sets the pace):")
    print(
        bar_chart(
            [
                (f"wl {c.wavelength:>2} ({c.signal_count:>2} signals)", c.power_mw)
                for c in spectrum.channels
            ],
            unit=" mW",
        )
    )
    hottest = spectrum.hottest
    print(
        f"\nhottest channel: wl {hottest.wavelength} "
        f"(worst il {hottest.worst_il_db:.2f} dB, headroom "
        f"{hottest.headroom_db:.2f} dB over its mean signal)"
    )
    print(f"power imbalance: {spectrum.power_imbalance:.2f}x the mean channel")

    out = Path(__file__).with_name("xring16_report.json")
    save_report(out, design, evaluation)
    print(f"\nJSON report written to {out}")


if __name__ == "__main__":
    main()
