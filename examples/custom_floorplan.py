"""Synthesis on an irregular custom floorplan.

The paper's introduction motivates automation with exactly this case:
when node positions are irregular, hand-picking the waveguide
connections (Fig. 2) becomes error-prone.  This example places ten
nodes of an imaginary MPSoC (CPU clusters, GPU, memory controllers)
at hand-chosen positions, synthesizes an XRing router, and contrasts
it with the naive "connect nodes in index order" ring a designer
might draw first.

Run with::

    python examples/custom_floorplan.py
"""

from repro.analysis import evaluate_circuit
from repro.core import synthesize
from repro.core.ring import RingTour
from repro.geometry import Point, RectilinearPath, l_routes
from repro.network import Network
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES
from repro.viz import ascii_layout

# An irregular 10-node floorplan (mm): CPU tiles on the left, a wide
# GPU at the bottom right, memory controllers on the rim.
FLOORPLAN = {
    "cpu0": Point(1.0, 1.2),
    "cpu1": Point(1.2, 3.4),
    "cpu2": Point(1.1, 5.6),
    "cpu3": Point(3.3, 6.3),
    "mem0": Point(5.9, 6.1),
    "mem1": Point(8.2, 5.8),
    "gpu": Point(8.4, 2.9),
    "dsp": Point(6.1, 1.1),
    "io0": Point(3.9, 0.9),
    "io1": Point(5.2, 3.6),
}


def naive_index_ring(network: Network) -> RingTour:
    """The ring a designer might draw: nodes in index order."""
    points = list(network.positions)
    n = len(points)
    order = list(range(n))
    paths = [
        l_routes(points[order[k]], points[order[(k + 1) % n]])[0] for k in range(n)
    ]
    positions = {}
    travelled = 0.0
    for k, node in enumerate(order):
        positions[node] = travelled
        travelled += paths[k].length
    return RingTour(
        order=tuple(order),
        edge_paths=tuple(paths),
        points=tuple(points),
        length_mm=travelled,
        node_position_mm=positions,
    )


def main() -> None:
    network = Network.from_positions(list(FLOORPLAN.values()))
    names = list(FLOORPLAN)

    naive = naive_index_ring(network)
    print(f"naive index-order ring : {naive.length_mm:.1f} mm of waveguide")

    design = synthesize(network)
    print(f"XRing optimized ring   : {design.tour.length_mm:.1f} mm of waveguide")
    order_names = " -> ".join(names[i] for i in design.tour.order)
    print(f"optimized visit order  : {order_names}")

    circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
    evaluation = evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK)
    print(f"worst-case insertion loss : {evaluation.il_w:.2f} dB")
    print(f"laser power               : {evaluation.power_w * 1000:.1f} mW")
    print(
        f"signals with crosstalk    : {evaluation.noisy_signals}"
        f"/{evaluation.signal_count}"
    )
    print(f"shortcuts                 : {design.shortcut_count}")

    print("\nLayout sketch:")
    print(ascii_layout(design, width=72))


if __name__ == "__main__":
    main()
