"""Quickstart: synthesize a 16-node XRing router and inspect it.

Runs the paper's full four-step flow (ring MILP, shortcuts, signal
mapping with openings, crossing-free PDN), lowers the result into a
photonic circuit, and prints the Table-II-style metrics.  Also writes
the layout to ``xring16.svg`` next to this script.

Run with::

    python examples/quickstart.py
"""

from pathlib import Path

from repro import synthesize_and_evaluate
from repro.viz import ascii_layout, render_design_svg


def main() -> None:
    design, evaluation = synthesize_and_evaluate(num_nodes=16)

    print("XRing synthesis (16-node PSION-style network)")
    print(f"  ring tour         : {' -> '.join(map(str, design.tour.order))}")
    print(f"  ring length       : {design.tour.length_mm:.1f} mm")
    print(f"  ring waveguides   : {design.ring_count}")
    print(f"  shortcuts         : {design.shortcut_count}")
    for s in design.shortcut_plan.shortcuts:
        print(
            f"    n{s.node_a} <-> n{s.node_b}: {s.length_mm:.1f} mm "
            f"(saves {s.gain_mm:.1f} mm over the ring)"
        )
    print(f"  wavelengths (#wl) : {evaluation.wl_count}")
    print(f"  worst-case il     : {evaluation.il_w:.2f} dB")
    print(f"  worst path length : {evaluation.worst_length_mm:.1f} mm")
    print(f"  laser power       : {evaluation.power_w:.3f} W")
    print(
        f"  noise-free signals: {evaluation.signal_count - evaluation.noisy_signals}"
        f"/{evaluation.signal_count}"
    )

    print("\nLayout sketch ('#' ring, '*' shortcut, 'o' opening):")
    print(ascii_layout(design))

    out = Path(__file__).with_name("xring16.svg")
    out.write_text(render_design_svg(design), encoding="utf-8")
    print(f"\nSVG layout written to {out}")


if __name__ == "__main__":
    main()
