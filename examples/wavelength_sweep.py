"""Sweep the per-waveguide wavelength budget (#wl).

Every table in the paper reports "the setting for min power / max
SNR": the wavelength budget trades the number of parallel ring
waveguides (more rings, shallower PDN per ring) against wavelength
parallelism per ring.  This example sweeps #wl for an 8-node XRing
and prints the power curve the tables' methodology optimizes over.

Run with::

    python examples/wavelength_sweep.py
"""

from repro.experiments import run_wavelength_sweep
from repro.viz import bar_chart


def main() -> None:
    budgets = [4, 5, 6, 8, 10, 12, 16]
    rows = run_wavelength_sweep(8, kind="xring", budgets=budgets)

    print("XRing, 8-node network: laser power vs wavelength budget\n")
    print(bar_chart([(f"#wl={b:>2}", row.power_w * 1000) for b, row in rows], unit=" mW"))

    print("\n#wl   rings  il_w(dB)  P(mW)   #s")
    for budget, row in rows:
        print(
            f"{budget:>3}   {row.wl:>4}  {row.il_w:>7.2f}  "
            f"{row.power_w * 1000:>6.2f}  {row.noisy:>3}"
        )

    best = min(rows, key=lambda item: item[1].power_w)
    print(
        f"\nbest setting: #wl={best[0]} "
        f"({best[1].power_w * 1000:.2f} mW, il_w={best[1].il_w:.2f} dB)"
    )


if __name__ == "__main__":
    main()
