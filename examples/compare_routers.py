"""Head-to-head: XRing vs ORNoC vs ORing on a 16-node network.

Reproduces the Table II/III methodology on one network: all three ring
routers share the same Step-1 ring tour, each is synthesized with its
own feature set (see the baseline module docstrings), and the same
analysis pipeline scores them.

Run with::

    python examples/compare_routers.py
"""

from repro.analysis import evaluate_circuit
from repro.baselines.ring import synthesize_ornoc, synthesize_oring
from repro.core import SynthesisOptions, XRingSynthesizer
from repro.core.ring import construct_ring_tour
from repro.network import Network
from repro.network.placement import psion_placement
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES
from repro.viz import bar_chart


def main() -> None:
    points, die = psion_placement(16)
    network = Network.from_positions(points, die=die)
    tour = construct_ring_tour(list(network.positions))

    designs = {
        "ORNoC": synthesize_ornoc(network, wl_budget=16, tour=tour),
        "ORing": synthesize_oring(network, wl_budget=16, tour=tour),
        "XRing": XRingSynthesizer(
            network, SynthesisOptions(wl_budget=16)
        ).run(tour=tour),
    }

    header = (
        f"{'router':<8}{'#wl':>5}{'il*_w':>8}{'L(mm)':>8}{'C':>5}"
        f"{'P(W)':>8}{'#s':>6}{'SNR_w':>8}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for name, design in designs.items():
        circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
        ev = evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK)
        snr = "-" if ev.snr_worst_db is None else f"{ev.snr_worst_db:.1f}"
        print(
            f"{name:<8}{ev.wl_count:>5}{ev.il_w:>8.2f}"
            f"{ev.worst_length_mm:>8.1f}{ev.worst_crossings:>5}"
            f"{ev.power_w:>8.3f}{ev.noisy_signals:>6}{snr:>8}"
        )
        rows.append((name, ev.power_w))

    print("\nlaser power comparison:")
    print(bar_chart(rows, unit=" W"))

    xring = designs["XRing"]
    print(
        f"\nXRing uses {xring.shortcut_count} shortcuts and opens "
        f"{xring.ring_count} ring waveguides for its crossing-free PDN."
    )


if __name__ == "__main__":
    main()
