"""Crossbar routers vs ring routers (the Table I story).

Places and routes the λ-router with two different physical-design
styles (PROTON+-like wirelength-first, PlanarONoC-like
crossing-minimizing) plus GWOR under the balanced ToPro flow, then
contrasts them with an XRing synthesis on the same 8-node network —
showing why the paper argues ring routers dominate crossbars on
insertion loss.

Run with::

    python examples/crossbar_vs_ring.py
"""

from repro.analysis import evaluate_circuit
from repro.baselines.crossbar import Gwor, LambdaRouter
from repro.baselines.tools import PLANARONOC, PROTON_PLUS, TOPRO, evaluate_crossbar
from repro.core import synthesize
from repro.network import Network
from repro.network.placement import proton_placement
from repro.photonics import PROTON_LOSSES
from repro.viz import bar_chart


def main() -> None:
    points, die = proton_placement(8)
    network = Network.from_positions(points, die=die)

    rows = []
    combos = [
        ("PROTON+ / λ-router", LambdaRouter(8), PROTON_PLUS),
        ("PlanarONoC / λ-router", LambdaRouter(8), PLANARONOC),
        ("ToPro / GWOR", Gwor(8), TOPRO),
    ]
    print(f"{'design':<24}{'#wl':>4}{'il_w(dB)':>10}{'L(mm)':>8}{'C':>5}")
    for name, topology, config in combos:
        ev = evaluate_crossbar(topology, network, config, PROTON_LOSSES)
        print(
            f"{name:<24}{ev.wl_count:>4}{ev.il_w:>10.2f}"
            f"{ev.worst_length_mm:>8.1f}{ev.worst_crossings:>5}"
        )
        rows.append((name, ev.il_w))

    design = synthesize(network, pdn_mode=None, loss=PROTON_LOSSES)
    circuit = design.to_circuit(PROTON_LOSSES)
    ev = evaluate_circuit(circuit, PROTON_LOSSES, None, with_power=False)
    print(
        f"{'XRing (this work)':<24}{ev.wl_count:>4}{ev.il_w:>10.2f}"
        f"{ev.worst_length_mm:>8.1f}{ev.worst_crossings:>5}"
    )
    rows.append(("XRing (this work)", ev.il_w))

    print("\nworst-case insertion loss:")
    print(bar_chart(rows, unit=" dB"))

    best_crossbar = min(value for name, value in rows[:3])
    reduction = 100 * (1 - rows[-1][1] / best_crossbar)
    print(
        f"\nXRing cuts worst-case insertion loss by {reduction:.0f}% vs the "
        "best crossbar flow (the paper reports > 40%)."
    )


if __name__ == "__main__":
    main()
