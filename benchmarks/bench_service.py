#!/usr/bin/env python
"""Job-service benchmark: emits ``BENCH_service.json``.

Measures the service envelope around the synthesis engine, over real
HTTP against an in-process ``serve()`` instance:

- **throughput & latency** — a burst of unique jobs (each a genuine
  MILP solve on a jittered floorplan): jobs/s end to end, p50/p99
  submit-to-done latency, p50/p99 submit-ack round trip;
- **idempotent dedup** — the same burst resubmitted after completion:
  p50/p99 round-trip latency of a cache-warm hit (no queue, no solve);
- **saturation** — a flood of submissions against a tiny admission
  queue: rejection rate, 429 round-trip latency, and proof that the
  server answered every request (no hangs, no 500s).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_service.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.obs import atomic_write_text
from repro.service import ServiceConfig, serve

RING = [
    (0.0, 0.0),
    (210.0, 0.0),
    (420.0, 0.0),
    (420.0, 210.0),
    (420.0, 420.0),
    (210.0, 420.0),
    (0.0, 420.0),
    (0.0, 210.0),
]


def job_spec(index: int) -> dict:
    jitter = 0.25 * (index + 1)
    return {
        "positions": [[x + jitter, y + jitter] for x, y in RING],
        "label": f"bench{index}",
    }


class BenchServer:
    """``serve()`` on a daemon thread (mirrors the test harness)."""

    def __init__(self, store_dir: Path, **overrides):
        self.config = ServiceConfig(port=0, store_dir=store_dir, **overrides)
        self.server = None
        self.result = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(60):
            raise RuntimeError("bench service did not start")

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()

        def on_ready(server):
            self.server = server
            self._ready.set()

        self.result = await serve(
            self.config, ready_callback=on_ready, stop_event=self._stop
        )

    def stop(self) -> dict:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120)
        return self.result

    @property
    def base(self) -> str:
        host, port = self.server.address
        return f"http://{host}:{port}"

    def post(self, payload: dict) -> tuple[int, dict, float]:
        request = urllib.request.Request(
            self.base + "/jobs",
            data=json.dumps(payload).encode("utf-8"),
            method="POST",
        )
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=60) as resp:
                return resp.status, json.loads(resp.read()), time.perf_counter() - start
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), time.perf_counter() - start

    def get_json(self, path: str) -> dict:
        with urllib.request.urlopen(self.base + path, timeout=60) as resp:
            return json.loads(resp.read())

    def wait_all_terminal(self, job_ids: list[str], timeout: float = 600.0):
        statuses = {}
        deadline = time.monotonic() + timeout
        while len(statuses) < len(job_ids) and time.monotonic() < deadline:
            for job_id in job_ids:
                if job_id in statuses:
                    continue
                payload = self.get_json(f"/jobs/{job_id}")
                if payload["state"] in ("done", "failed"):
                    statuses[job_id] = payload
            time.sleep(0.01)
        if len(statuses) < len(job_ids):
            raise RuntimeError("benchmark jobs never finished")
        return statuses


def percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)

    def pct(p: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return ordered[index]

    return {
        "p50_s": round(pct(0.50), 6),
        "p99_s": round(pct(0.99), 6),
        "mean_s": round(statistics.fmean(ordered), 6) if ordered else 0.0,
        "samples": len(ordered),
    }


def bench_throughput(store_root: Path, jobs: int) -> dict:
    """Unique-job burst: throughput plus solve and ack latency."""
    server = BenchServer(store_root / "throughput", queue_limit=max(64, jobs))
    try:
        specs = [job_spec(i) for i in range(jobs)]
        started = time.perf_counter()
        acks = [server.post(spec) for spec in specs]
        assert all(status == 201 for status, _, _ in acks), "admission failed"
        ids = [payload["job_id"] for _, payload, _ in acks]
        finals = server.wait_all_terminal(ids)
        wall = time.perf_counter() - started
        failed = [j for j, p in finals.items() if p["state"] != "done"]
        assert not failed, f"benchmark jobs failed: {failed}"
        job_latency = [
            payload["updated_unix"] - payload["created_unix"]
            for payload in finals.values()
        ]
        ack_latency = [elapsed for _, _, elapsed in acks]

        # Dedup pass against the same live server: every job is warm.
        dedup = [server.post(spec) for spec in specs]
        assert all(status == 200 for status, _, _ in dedup)
        assert all(payload["state"] == "done" for _, payload, _ in dedup)
        dedup_latency = [elapsed for _, _, elapsed in dedup]
        stats = server.get_json("/stats")
    finally:
        drain = server.stop()
    return {
        "jobs": jobs,
        "wall_clock_s": round(wall, 4),
        "throughput_jobs_per_s": round(jobs / wall, 3),
        "job_latency": percentiles(job_latency),
        "submit_ack_latency": percentiles(ack_latency),
        "dedup_hit_latency": percentiles(dedup_latency),
        "solves": stats["solves"],
        "dedup_hits": stats["dedup_hits"],
        "drain_clean": drain["clean"],
    }


def bench_saturation(store_root: Path, flood: int, queue_limit: int) -> dict:
    """Overload: flood a tiny queue, measure the rejection envelope."""
    server = BenchServer(store_root / "saturation", queue_limit=queue_limit)
    try:
        results: list[tuple[int, float]] = []
        lock = threading.Lock()

        def submit(index: int) -> None:
            status, _, elapsed = server.post(job_spec(1000 + index))
            with lock:
                results.append((status, elapsed))

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(flood)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        statuses = [status for status, _ in results]
        rejected = [elapsed for status, elapsed in results if status == 429]
        accepted = statuses.count(201)
        unexpected = [s for s in statuses if s not in (200, 201, 429)]
        assert not unexpected, f"saturation produced {unexpected}"
        stats = server.get_json("/stats")
    finally:
        drain = server.stop()
    return {
        "flood": flood,
        "queue_limit": queue_limit,
        "wall_clock_s": round(wall, 4),
        "accepted": accepted,
        "rejected": len(rejected),
        "rejection_rate": round(len(rejected) / flood, 4),
        "rejection_latency": percentiles(rejected),
        "rejected_queue_full_counter": stats["rejected_queue_full"],
        "drain_clean": drain["clean"],
        "drain_abandoned": drain["abandoned"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller bursts (20 jobs / 40 flood) for CI",
    )
    parser.add_argument(
        "--out",
        default="BENCH_service.json",
        help="output path (default: BENCH_service.json)",
    )
    parser.add_argument(
        "--history-dir",
        default="",
        help="append a kind='bench' run record to the ledger in this "
        "directory (consumed by 'xring regress' / 'xring report')",
    )
    args = parser.parse_args(argv)

    jobs = 20 if args.quick else 60
    flood = 40 if args.quick else 120
    with tempfile.TemporaryDirectory(prefix="xring-bench-service-") as tmp:
        store_root = Path(tmp)
        payload = {
            "benchmark": "repro.service job server",
            "quick": args.quick,
            "environment": {
                "cpu_count": os.cpu_count(),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "throughput": bench_throughput(store_root, jobs),
            "saturation": bench_saturation(store_root, flood, queue_limit=4),
        }

    # Atomic write: a killed benchmark never leaves a truncated
    # baseline for later runs to diff against.
    atomic_write_text(args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    throughput = payload["throughput"]
    saturation = payload["saturation"]
    if args.history_dir:
        from repro.obs import RunLedger, RunRecord

        record = RunRecord.build(
            "bench",
            "bench_service-quick" if args.quick else "bench_service",
            wall_s=throughput["wall_clock_s"] + saturation["wall_clock_s"],
            extra={
                "throughput_jobs_per_s": throughput["throughput_jobs_per_s"],
                "job_latency_p50_s": throughput["job_latency"]["p50_s"],
                "job_latency_p99_s": throughput["job_latency"]["p99_s"],
                "dedup_hit_latency_p50_s": throughput["dedup_hit_latency"]["p50_s"],
                "rejection_rate": saturation["rejection_rate"],
                "rejection_latency_p99_s": saturation["rejection_latency"]["p99_s"],
            },
        )
        ledger = RunLedger(args.history_dir)
        ledger.append(record)
        print(f"history recorded: {record.run_id} -> {ledger.path}", file=sys.stderr)

    print(f"wrote {args.out}")
    print(
        f"  throughput: {throughput['throughput_jobs_per_s']} jobs/s over "
        f"{throughput['jobs']} jobs | job latency "
        f"p50={throughput['job_latency']['p50_s']}s "
        f"p99={throughput['job_latency']['p99_s']}s | dedup hit "
        f"p50={throughput['dedup_hit_latency']['p50_s']}s"
    )
    print(
        f"  saturation: {saturation['rejected']}/{saturation['flood']} "
        f"rejected (rate={saturation['rejection_rate']}) | 429 latency "
        f"p99={saturation['rejection_latency']['p99_s']}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
