"""Ablation benchmarks: feature matrix and the #wl sweep (E4/E5)."""

import math

import pytest

from repro.experiments import run_shortcut_ablation, run_wavelength_sweep
from repro.experiments.ablations import format_ablation
from repro.viz import bar_chart


def test_feature_ablation(benchmark, once):
    rows = once(benchmark, run_shortcut_ablation, 16)
    print("\n== XRing feature ablation (16-node network) ==")
    print(format_ablation(rows))

    variants = {row.variant: row.row for row in rows}

    # Openings + internal PDN are what remove the noise: the
    # no-openings variant routes the PDN externally and suffers.
    assert variants["full"].noisy <= 0.02 * variants["full"].signal_count
    assert variants["no-openings"].noisy > 0.5 * variants["no-openings"].signal_count

    # Shortcuts shorten the average path; without them the total served
    # ring length cannot be shorter.
    assert variants["no-shortcuts"].length_mm >= variants["full"].length_mm - 1e-6

    # The bare variant (no shortcuts, no openings) behaves like ORing.
    assert variants["bare"].noisy > 0.5 * variants["bare"].signal_count
    assert variants["bare"].power_w > variants["full"].power_w


@pytest.mark.parametrize("kind", ["xring", "ornoc"])
def test_wavelength_sweep(benchmark, once, kind):
    budgets = [6, 8, 10, 12, 16]
    rows = once(benchmark, run_wavelength_sweep, 8, kind=kind, budgets=budgets)
    print(f"\n== #wl sweep ({kind}, 8-node network) ==")
    print(bar_chart([(f"#wl={b}", row.power_w) for b, row in rows], unit=" W"))

    assert all(math.isfinite(row.power_w) and row.power_w > 0 for _, row in rows)
    assert all(row.wl <= budget for budget, row in rows)

    # The sweep must actually move the objective — otherwise "picking
    # the best setting" (every table's methodology) would be vacuous.
    powers = [row.power_w for _, row in rows]
    assert max(powers) > min(powers)
