#!/usr/bin/env python
"""Batch-engine benchmark: emits ``BENCH_parallel.json``.

Measures the three perf levers of :mod:`repro.parallel` on the scaling
study and the ablation sweep:

- **parallel fan-out** — the scaling study cold with ``workers=1`` vs
  ``workers=N`` (honest on a 1-CPU container: ``speedup_parallel`` is
  ``null`` with an explanatory note there, because a pool cannot speed
  up a single CPU — the ratio would only measure IPC overhead);
- **warm synthesis cache** — the same study re-run with tour caching
  enabled after a priming pass, so Step-1 solves are served from the
  cache;
- **conflict-dict reuse** — the ablation sweep's conflicts-section
  hit rate (four variants on one floorplan → one build, three hits);
- **profiler tax** — one representative synthesis bare vs under the
  sampling profiler (``overhead_frac`` must stay under the <5%
  promise the profiler tests gate).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_parallel.py --quick

The output JSON is the perf baseline future PRs diff against: wall
clock per phase, per-stage breakdown of a representative run, speedups
vs ``workers=1``, and full cache statistics.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.experiments.ablations import run_shortcut_ablation
from repro.experiments.scaling import run_scaling
from repro.obs import atomic_write_text
from repro.parallel import clear_caches, get_cache

QUICK_SIZES = (8, 16)
FULL_SIZES = (8, 16, 32)
METHODS = ("milp", "heuristic")


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def parallel_speedup(
    t_cold: float, t_parallel: float, cpu_count: int | None
) -> tuple[float | None, str]:
    """Honest parallel-speedup figure: ``(speedup, note)``.

    On a single-CPU host a "parallel" pool only adds IPC overhead, so
    the cold/parallel ratio measures the overhead, not a speedup —
    report ``None`` with an explanatory note instead of a misleading
    sub-1 figure.
    """
    if cpu_count is None or cpu_count <= 1:
        return None, (
            f"n/a (cpu_count={cpu_count}): parallel fan-out cannot speed "
            "up a single-CPU host; the parallel phase measures pool "
            "overhead only"
        )
    if t_parallel <= 0:
        return None, "n/a (parallel phase too fast to time)"
    return round(t_cold / t_parallel, 3), ""


def bench_scaling(sizes: tuple[int, ...], workers: int) -> dict:
    """Cold sequential vs parallel vs warm-cache runs of the study."""
    cache = get_cache()

    clear_caches()
    rows, t_cold = _timed(run_scaling, sizes=sizes, methods=METHODS, workers=1)

    clear_caches()
    _, t_parallel = _timed(
        run_scaling, sizes=sizes, methods=METHODS, workers=workers
    )

    # Warm-cache pass: prime with result caching on, then measure the
    # re-run that serves every Step-1 tour and Step-2 shortcut plan
    # (and conflict dict) warm.
    clear_caches()
    was_enabled = cache.result_caching
    cache.enable_result_caching(True)
    try:
        run_scaling(sizes=sizes, methods=METHODS, workers=1)
        _, t_warm = _timed(
            run_scaling, sizes=sizes, methods=METHODS, workers=1
        )
        warm_stats = cache.stats()
    finally:
        cache.enable_result_caching(was_enabled)

    speedup, speedup_note = parallel_speedup(t_cold, t_parallel, os.cpu_count())
    if speedup is None:
        print(f"bench_parallel: warning: speedup_parallel {speedup_note}", file=sys.stderr)
    result = {
        "sizes": list(sizes),
        "methods": list(METHODS),
        "workers": workers,
        "wall_clock_s": {
            "cold_workers1": round(t_cold, 4),
            f"parallel_workers{workers}": round(t_parallel, 4),
            "warm_cache_workers1": round(t_warm, 4),
        },
        "speedup_parallel": speedup,
        "speedup_warm_cache": round(t_cold / t_warm, 3),
        "warm_cache_stats": warm_stats,
        "rows": [
            {
                "num_nodes": r.num_nodes,
                "method": r.method,
                "tour_time_s": round(r.tour_time_s, 4),
                "total_time_s": round(r.total_time_s, 4),
            }
            for r in rows
        ],
    }
    if speedup_note:
        result["speedup_parallel_note"] = speedup_note
    return result


def bench_ablation(num_nodes: int) -> dict:
    """Conflict-cache behaviour across one ablation sweep."""
    clear_caches()
    rows, elapsed = _timed(run_shortcut_ablation, num_nodes=num_nodes)
    stats = get_cache().stats()
    return {
        "num_nodes": num_nodes,
        "variants": [r.variant for r in rows],
        "wall_clock_s": round(elapsed, 4),
        "cache_stats": stats,
        "conflicts_hit_rate": stats["conflicts"]["hit_rate"],
    }


def bench_stages(num_nodes: int) -> dict:
    """Per-stage wall clock of one representative cold synthesis."""
    from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
    from repro.network import Network
    from repro.network.placement import psion_placement

    clear_caches()
    points, die = psion_placement(num_nodes)
    network = Network.from_positions(points, die=die)
    synth = XRingSynthesizer(network, SynthesisOptions(wl_budget=num_nodes))
    design, elapsed = _timed(synth.run)
    return {
        "num_nodes": num_nodes,
        "total_s": round(elapsed, 4),
        "stage_elapsed_s": {
            stage: round(seconds, 4)
            for stage, seconds in design.report.stage_elapsed_s.items()
        },
    }


def bench_profile(num_nodes: int) -> dict:
    """Profiler tax: the same cold synthesis bare vs sampled.

    ``overhead_frac`` is the figure the perf sentinel guards — the
    sampling profiler promises <5% overhead, so a regression here
    means the sampler loop got more expensive, not the synthesis.
    Best-of-two per arm to shave scheduler noise.
    """
    from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
    from repro.network import Network
    from repro.network.placement import psion_placement
    from repro.obs import SamplingProfiler

    points, die = psion_placement(num_nodes)

    def run_once(profiled: bool) -> tuple[float, dict]:
        clear_caches()
        network = Network.from_positions(points, die=die)
        synth = XRingSynthesizer(network, SynthesisOptions(wl_budget=num_nodes))
        if not profiled:
            _, elapsed = _timed(synth.run)
            return elapsed, {}
        profiler = SamplingProfiler()
        profiler.start()
        try:
            _, elapsed = _timed(synth.run)
        finally:
            profiler.stop()
        return elapsed, profiler.stage_attribution()

    run_once(False)  # warm imports so neither arm pays them
    t_bare = min(run_once(False)[0] for _ in range(2))
    timings = [run_once(True) for _ in range(2)]
    t_profiled = min(t for t, _ in timings)
    attribution = timings[0][1]
    return {
        "num_nodes": num_nodes,
        "bare_s": round(t_bare, 4),
        "profiled_s": round(t_profiled, 4),
        "overhead_frac": round(max(0.0, t_profiled / t_bare - 1.0), 4),
        "hz": attribution.get("hz"),
        "samples": attribution.get("samples"),
        "stage_attribution": {
            stage: stats["fraction"]
            for stage, stats in attribution.get("stages", {}).items()
        },
    }


def bench_lazy_conflicts(num_nodes: int, scalar_ref_nodes: int) -> dict:
    """N=64 arm: vectorized conflict kernel + lazy cutting-plane MILP.

    Times the bulk conflict build at ``num_nodes`` and both builders at
    ``scalar_ref_nodes`` (the scalar oracle is O(n^4); running it at 64
    nodes costs minutes, so quick mode references a smaller size), then
    a full lazy-mode synthesis.  The eager ring is timed at
    ``scalar_ref_nodes`` only — at 64 nodes the eager model (every
    constraint-(3) row materialized) takes upwards of ten minutes,
    which is precisely what the cutting-plane loop eliminates.  The
    lazy wall clock is the headline figure: it must stay under the
    eager N=32 synthesis time recorded by ``stages``.
    """
    from repro.core.ring import construct_ring_tour
    from repro.core.synthesizer import SynthesisOptions, XRingSynthesizer
    from repro.geometry import (
        build_edge_conflicts_bulk,
        build_edge_conflicts_scalar,
    )
    from repro.network import Network
    from repro.network.placement import extended_placement
    from repro.obs import ObsContext, use_obs
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import NULL_TRACER

    points, die = extended_placement(num_nodes)
    _, t_bulk = _timed(build_edge_conflicts_bulk, points)
    ref_points, _ = extended_placement(scalar_ref_nodes)
    _, t_scalar_ref = _timed(build_edge_conflicts_scalar, ref_points)
    _, t_bulk_ref = _timed(build_edge_conflicts_bulk, ref_points)

    # The ambient registry is a no-op by default; the round/cut
    # counters only exist inside a real one.
    metrics = MetricsRegistry()

    clear_caches()
    network = Network.from_positions(points, die=die)
    synth = XRingSynthesizer(
        network, SynthesisOptions(wl_budget=num_nodes, lazy_conflicts=True)
    )
    with use_obs(ObsContext(NULL_TRACER, metrics)):
        design, t_lazy = _timed(synth.run)
    cut_rounds = metrics.counter("ring.lazy.rounds").value
    cuts_added = metrics.counter("ring.lazy.cuts_added").value

    clear_caches()
    _, t_eager_ring_ref = _timed(
        construct_ring_tour, list(ref_points), lazy=False
    )
    clear_caches()
    _, t_lazy_ring_ref = _timed(
        construct_ring_tour, list(ref_points), lazy=True
    )
    clear_caches()
    _, t_lazy_ring = _timed(construct_ring_tour, list(points), lazy=True)

    return {
        "num_nodes": num_nodes,
        "conflict_build_bulk_s": round(t_bulk, 4),
        "scalar_ref_nodes": scalar_ref_nodes,
        "conflict_build_scalar_ref_s": round(t_scalar_ref, 4),
        "conflict_build_bulk_ref_s": round(t_bulk_ref, 4),
        "bulk_speedup_at_ref": round(t_scalar_ref / max(t_bulk_ref, 1e-9), 2),
        "lazy_total_s": round(t_lazy, 4),
        "lazy_stage_elapsed_s": {
            stage: round(seconds, 4)
            for stage, seconds in design.report.stage_elapsed_s.items()
        },
        "ring_eager_ref_s": round(t_eager_ring_ref, 4),
        "ring_lazy_ref_s": round(t_lazy_ring_ref, 4),
        "ring_lazy_s": round(t_lazy_ring, 4),
        "ring_eager_note": (
            f"eager ring timed at {scalar_ref_nodes} nodes; the eager "
            f"model at {num_nodes} nodes takes >10 minutes to build and "
            "solve, which the lazy cutting-plane loop avoids"
        ),
        "cut_rounds": cut_rounds,
        "cuts_added": cuts_added,
        "tour_length_mm": round(design.tour.length_mm, 4),
        "tour_crossings": design.tour.crossing_count,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scaling sizes (8, 16) instead of (8, 16, 32)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="worker count for the parallel phase (default: 2..4 by CPU)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_parallel.json",
        help="output path (default: BENCH_parallel.json)",
    )
    parser.add_argument(
        "--history-dir",
        default="",
        help="append a kind='bench' run record to the ledger in this "
        "directory (consumed by 'xring regress' / 'xring report')",
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    payload = {
        "benchmark": "repro.parallel batch engine",
        "quick": args.quick,
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scaling": bench_scaling(sizes, args.workers),
        "ablation_sweep": bench_ablation(num_nodes=16),
        "stages": bench_stages(num_nodes=16),
        "profile": bench_profile(num_nodes=16),
        "lazy_conflicts": bench_lazy_conflicts(
            num_nodes=64, scalar_ref_nodes=32
        ),
    }

    # Atomic write: a killed benchmark never leaves a truncated
    # baseline for later runs to diff against.
    atomic_write_text(args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if args.history_dir:
        from repro.obs import RunLedger, RunRecord, stage_latency_from_elapsed

        scaling = payload["scaling"]
        clocks = scaling["wall_clock_s"]
        record = RunRecord.build(
            "bench",
            "bench_parallel-quick" if args.quick else "bench_parallel",
            wall_s=sum(clocks.values())
            + payload["ablation_sweep"]["wall_clock_s"]
            + payload["stages"]["total_s"],
            stage_latency=stage_latency_from_elapsed(
                payload["stages"]["stage_elapsed_s"]
            ),
            cache=payload["ablation_sweep"]["cache_stats"],
            extra={
                "phase_wall_clock_s": dict(clocks),
                "speedup_parallel": scaling["speedup_parallel"],
                "speedup_warm_cache": scaling["speedup_warm_cache"],
                "conflicts_hit_rate": payload["ablation_sweep"][
                    "conflicts_hit_rate"
                ],
                "profiler_overhead_frac": payload["profile"][
                    "overhead_frac"
                ],
                "lazy_conflicts": {
                    "num_nodes": payload["lazy_conflicts"]["num_nodes"],
                    "conflict_build_bulk_s": payload["lazy_conflicts"][
                        "conflict_build_bulk_s"
                    ],
                    "conflict_build_scalar_ref_s": payload["lazy_conflicts"][
                        "conflict_build_scalar_ref_s"
                    ],
                    "lazy_total_s": payload["lazy_conflicts"]["lazy_total_s"],
                    "cut_rounds": payload["lazy_conflicts"]["cut_rounds"],
                    "cuts_added": payload["lazy_conflicts"]["cuts_added"],
                },
                "profile": {
                    "samples": payload["profile"]["samples"],
                    "hz": payload["profile"]["hz"],
                    "stages": {
                        stage: {"fraction": fraction}
                        for stage, fraction in payload["profile"][
                            "stage_attribution"
                        ].items()
                    },
                },
            },
        )
        ledger = RunLedger(args.history_dir)
        ledger.append(record)
        print(f"history recorded: {record.run_id} -> {ledger.path}", file=sys.stderr)

    scaling = payload["scaling"]
    clocks = scaling["wall_clock_s"]
    speedup = scaling["speedup_parallel"]
    speedup_text = "n/a" if speedup is None else f"{speedup}x"
    print(f"wrote {args.out}")
    print(
        f"  scaling: cold={clocks['cold_workers1']}s"
        f" parallel(x{scaling['workers']})="
        f"{clocks['parallel_workers%d' % scaling['workers']]}s"
        f" warm={clocks['warm_cache_workers1']}s"
        f" | speedup parallel={speedup_text}"
        f" warm-cache={scaling['speedup_warm_cache']}x"
    )
    ablation = payload["ablation_sweep"]
    print(
        f"  ablation: {ablation['wall_clock_s']}s,"
        f" conflicts hit rate={ablation['conflicts_hit_rate']:.2f}"
    )
    profile = payload["profile"]
    print(
        f"  profiler: bare={profile['bare_s']}s"
        f" profiled={profile['profiled_s']}s"
        f" overhead={profile['overhead_frac']:.1%}"
        f" ({profile['samples']} samples @ {profile['hz']}Hz)"
    )
    lazy = payload["lazy_conflicts"]
    print(
        f"  lazy conflicts (N={lazy['num_nodes']}):"
        f" total={lazy['lazy_total_s']}s"
        f" bulk-build={lazy['conflict_build_bulk_s']}s"
        f" rounds={lazy['cut_rounds']} cuts={lazy['cuts_added']}"
        f" | ring eager/lazy @N={lazy['scalar_ref_nodes']}:"
        f" {lazy['ring_eager_ref_s']}s/{lazy['ring_lazy_ref_s']}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
