"""Benchmark regenerating Table I (8- and 16-node, no PDNs).

Prints the reproduced table (run pytest with ``-s`` to see it) and
asserts the paper's shape: crossbar flows suffer crossings and high
worst-case insertion loss; ring routers are crossing-free; XRing cuts
il_w by more than 40% against every crossbar flow.
"""

import pytest

from repro.experiments import format_table1, run_table1


@pytest.mark.parametrize("num_nodes", [8, 16])
def test_table1(benchmark, once, num_nodes):
    rows = once(benchmark, run_table1, num_nodes)
    print(f"\n== Table I ({num_nodes}-node network, reproduced) ==")
    print(format_table1(rows))

    by_tool = {row.tool: row for row in rows}
    crossbars = [by_tool["Proton+"], by_tool["PlanarONoC"], by_tool["ToPro"]]
    rings = [by_tool["Ornoc"], by_tool["Oring"], by_tool["Xring"]]

    # Crossbar physical designs suffer crossings; rings do not.
    assert all(row.crossings > 0 for row in crossbars)
    assert all(row.crossings == 0 for row in rings)

    # PROTON+ is the crossing-heaviest flow (paper: 27/255 crossings).
    assert by_tool["Proton+"].crossings == max(r.crossings for r in crossbars)

    # PlanarONoC trades wirelength for crossings (paper: longest L).
    assert by_tool["PlanarONoC"].length_mm == max(r.length_mm for r in crossbars)

    # Headline: XRing cuts worst-case il by > 40% vs every crossbar flow.
    for crossbar in crossbars:
        assert by_tool["Xring"].il_w < 0.6 * crossbar.il_w

    # Ring routers answer in about a second (paper: <= 0.3 s in C++).
    assert all(row.time_s < 30 for row in rings)
