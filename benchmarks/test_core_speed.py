"""Micro-benchmarks of the synthesis stages (the paper's T column).

These are real hot-loop benchmarks (pytest-benchmark averages), sized
so the whole suite stays interactive.
"""

import pytest

from repro.analysis import evaluate_circuit
from repro.core.mapping import map_signals
from repro.core.ring import construct_ring_tour
from repro.core.shortcuts import ShortcutPlan, select_shortcuts
from repro.network import Network
from repro.network.placement import psion_placement
from repro.network.traffic import all_to_all
from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES


@pytest.fixture(scope="module")
def tours():
    result = {}
    for n in (8, 16):
        points, die = psion_placement(n)
        network = Network.from_positions(points, die=die)
        result[n] = (network, construct_ring_tour(points))
    return result


@pytest.mark.parametrize("num_nodes", [8, 16])
def test_bench_ring_construction(benchmark, num_nodes):
    points, _ = psion_placement(num_nodes)
    tour = benchmark(construct_ring_tour, points)
    assert tour.crossing_count == 0


@pytest.mark.parametrize("num_nodes", [8, 16])
def test_bench_shortcut_selection(benchmark, tours, num_nodes):
    _, tour = tours[num_nodes]
    plan = benchmark(select_shortcuts, tour, loss=ORING_LOSSES)
    assert isinstance(plan.shortcuts, list)


@pytest.mark.parametrize("num_nodes", [8, 16])
def test_bench_signal_mapping(benchmark, tours, num_nodes):
    _, tour = tours[num_nodes]
    mapping = benchmark(
        map_signals, tour, all_to_all(num_nodes), ShortcutPlan(), num_nodes
    )
    assert len(mapping.assignments) == num_nodes * (num_nodes - 1)


def test_bench_full_evaluation(benchmark, tours):
    from repro.core import SynthesisOptions, XRingSynthesizer

    network, tour = tours[16]
    design = XRingSynthesizer(network, SynthesisOptions(wl_budget=16)).run(tour=tour)

    def evaluate():
        circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)
        return evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK)

    evaluation = benchmark(evaluate)
    assert evaluation.signal_count == 240
