"""Benchmark regenerating Table III (ORing vs XRing, 16 nodes)."""

from repro.experiments import format_table3, run_table3

#: Sweep centred on the paper's settings (ORing 12/16, XRing 14).
BUDGETS = [12, 14, 16, 20]


def test_table3(benchmark, once):
    blocks = once(benchmark, run_table3, budgets=BUDGETS)
    print("\n== Table III (16-node network, reproduced) ==")
    print(format_table3(blocks))

    for block in blocks:
        oring, xring = block.oring, block.xring

        # XRing reduces laser power (paper: about -10%) ...
        assert xring.power_w < oring.power_w

        # ... and suffers essentially no first-order noise, while the
        # external PDN of ORing hits most signals (paper: 87% vs 1%).
        assert oring.noisy > 0.5 * oring.signal_count
        assert xring.noisy <= 0.02 * xring.signal_count

        # SNR: XRing is either noise-free (reported "-") or far above.
        if xring.snr_w is not None and oring.snr_w is not None:
            assert xring.snr_w > oring.snr_w

        # Synthesis stays within interactive time (paper: < 1 s in C++).
        assert xring.time_s < 30
