"""Benchmark regenerating Table II (ORNoC vs XRing with PDNs).

One benchmark per network size (8, 16, 32).  The #wl sweep follows the
paper's methodology of picking the min-power and max-SNR settings; the
sweep grids are centred on the settings the paper reports.
"""

import pytest

from repro.experiments import format_table2, run_table2

#: Sweep grids per network size (paper-reported settings included:
#: ORNoC picked 5/8/16/32 wavelengths, XRing 8/14/31).
BUDGETS = {
    8: [5, 6, 8, 10],
    16: [12, 14, 16, 20],
    32: [28, 31, 32, 40],
}


@pytest.mark.parametrize("num_nodes", [8, 16, 32])
def test_table2(benchmark, once, num_nodes):
    blocks = once(
        benchmark,
        run_table2,
        sizes=(num_nodes,),
        budgets={num_nodes: BUDGETS[num_nodes]},
    )
    print(f"\n== Table II ({num_nodes}-node network, reproduced) ==")
    print(format_table2(blocks))

    for block in blocks:
        ornoc, xring = block.ornoc, block.xring

        # XRing's PDN is crossing-free; its worst path sees none.
        assert xring.crossings == 0

        # XRing needs less (or at 8 nodes: equal, as in the paper)
        # laser power.
        if num_nodes == 8:
            assert xring.power_w <= 1.15 * ornoc.power_w
        else:
            assert xring.power_w < ornoc.power_w

        # ORNoC suffers widespread first-order noise, XRing almost none
        # (paper: > 98% of XRing signals are noise-free).
        assert ornoc.noisy > 0.5 * ornoc.signal_count
        assert xring.noisy <= 0.02 * xring.signal_count

        # Worst-case insertion loss ordering (paper: -25% .. -32%).
        assert xring.il_w < ornoc.il_w

        # ORNoC's utilization-first assignment produces longer worst
        # paths than XRing's shortest-direction + shortcuts.
        assert xring.length_mm < ornoc.length_mm
