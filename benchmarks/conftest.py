"""Benchmark configuration.

Every experiment harness is a full synthesis + analysis pipeline, so
benchmarks run with ``pedantic`` single-shot timing (the paper's T
column is a one-shot synthesis time, not a hot-loop average).
"""

from __future__ import annotations

import pytest


def single_shot(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def once():
    """Fixture exposing the single-shot runner."""
    return single_shot
