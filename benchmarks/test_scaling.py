"""Scaling benchmark (extension experiment E6): MILP vs heuristic.

The paper's runtime claim ("synthesizes a router including a PDN
within one second") is a C++/Gurobi number; this benchmark measures
our pure-Python flow and the heuristic Step-1 alternative that keeps
synthesis interactive beyond the paper's 32-node ceiling.
"""

from repro.experiments import format_scaling, run_scaling


def test_scaling(benchmark, once):
    rows = once(
        benchmark,
        run_scaling,
        sizes=(8, 16, 32),
        methods=("milp", "heuristic"),
    )
    print("\n== Scaling study (E6): exact vs heuristic Step 1 ==")
    print(format_scaling(rows))

    by_key = {(r.num_nodes, r.method): r for r in rows}

    for n in (8, 16, 32):
        exact = by_key[(n, "milp")]
        heur = by_key[(n, "heuristic")]
        # The heuristic tour is near-optimal (within 15%) and far
        # faster to construct.
        assert heur.tour_length_mm <= 1.15 * exact.tour_length_mm
        assert heur.tour_time_s < exact.tour_time_s
        # Quality downstream stays comparable: worst-case loss within
        # half a dB of the exact tour's.
        assert abs(heur.row.il_w - exact.row.il_w) < 0.5
        # XRing remains noise-free either way.
        assert heur.row.noisy == 0 and exact.row.noisy == 0


def test_second_order_noise_negligible(benchmark, once):
    """Extension: check the paper's first-order-only assumption.

    On the noisiest design we have (ORing's external PDN at 16 nodes),
    extending the simulation to second order must barely move the
    worst-case SNR — the justification in Sec. II-B.
    """
    from repro.analysis import evaluate_circuit
    from repro.baselines.ring import synthesize_oring
    from repro.network import Network
    from repro.network.placement import psion_placement
    from repro.photonics import NIKDAST_CROSSTALK, ORING_LOSSES

    points, die = psion_placement(16)
    network = Network.from_positions(points, die=die)
    design = synthesize_oring(network, wl_budget=16)
    circuit = design.to_circuit(ORING_LOSSES, NIKDAST_CROSSTALK)

    first = evaluate_circuit(circuit, ORING_LOSSES, NIKDAST_CROSSTALK)
    second = once(
        benchmark,
        evaluate_circuit,
        circuit,
        ORING_LOSSES,
        NIKDAST_CROSSTALK,
        noise_order=2,
    )
    print(
        f"\nSNR_w first-order {first.snr_worst_db:.2f} dB vs "
        f"second-order {second.snr_worst_db:.2f} dB "
        f"(noisy: {first.noisy_signals} -> {second.noisy_signals})"
    )
    assert second.noisy_signals >= first.noisy_signals
    assert second.snr_worst_db <= first.snr_worst_db + 1e-9
    # The paper's assumption: higher orders shift SNR_w by well under 1 dB.
    assert first.snr_worst_db - second.snr_worst_db < 1.0
